"""The Dynamic Partition Tree (paper Section 4).

A DPT is the same two-layer structure as PASS's static partition tree - a
hierarchical rectangular partitioning with per-node aggregate statistics
and stratified samples at the leaves - represented so that every piece is
incrementally maintainable:

* inserts/deletes update the exact delta statistics of the root-to-leaf
  path (Figure 3) and the MIN/MAX heaps;
* node snapshot statistics are *estimates* accumulated from catch-up
  samples (Section 4.3), so a freshly re-initialized tree is usable
  immediately and sharpens in the background;
* leaf samples are virtual strata of the pooled reservoir, provided at
  query time by a caller-supplied ``leaf_samples`` function so the tree
  itself stays storage-agnostic.

Query processing (Section 4.4) decomposes a predicate into fully covered
nodes (answered from node statistics, contributing catch-up variance
nu_c) and partially covered leaves (answered from stratified samples,
contributing nu_s); see :mod:`repro.core.estimators` for the formulas.

Maintenance is vectorized: :meth:`DynamicPartitionTree.insert_rows` /
:meth:`~DynamicPartitionTree.delete_rows` /
:meth:`~DynamicPartitionTree.add_catchup_rows` route an ``(n, d)``
coordinate batch to leaves with vectorized rectangle tests and apply
grouped per-node statistics along the root-to-leaf paths; the per-row
methods delegate to the same machinery.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..partitioning.spec import PartitionNode
from . import estimators
from .node import DPTNode
from .queries import AggFunc, Query, QueryResult, Rectangle

LeafSamplesFn = Callable[[DPTNode], np.ndarray]


class DynamicPartitionTree:
    """A partition-tree synopsis over one query template."""

    def __init__(self, spec: PartitionNode, schema: Sequence[str],
                 predicate_attrs: Sequence[str],
                 stat_attrs: Optional[Sequence[str]] = None,
                 minmax_attrs: Optional[Sequence[str]] = None,
                 minmax_k: int = 32) -> None:
        self.schema = tuple(schema)
        self.predicate_attrs = tuple(predicate_attrs)
        if spec.rect.dim != len(self.predicate_attrs):
            raise ValueError("spec dimensionality != #predicate attributes")
        self.stat_attrs = tuple(stat_attrs) if stat_attrs else self.schema
        self._stat_pos: Dict[str, int] = {a: i for i, a in
                                          enumerate(self.stat_attrs)}
        self._pred_idx = np.array([self.schema.index(a)
                                   for a in self.predicate_attrs])
        self._stat_idx = np.array([self.schema.index(a)
                                   for a in self.stat_attrs])
        minmax_attrs = tuple(minmax_attrs) if minmax_attrs is not None \
            else self.stat_attrs
        self._mm_pos = tuple(self._stat_pos[a] for a in minmax_attrs
                             if a in self._stat_pos)
        self._minmax_k = minmax_k
        self.n0 = 0                       # snapshot population at epoch start
        self._nodes: List[DPTNode] = []
        self._next_id = 0
        self.root = self._build(spec, self._mm_pos, minmax_k)
        self._inflate_edges()
        self.leaves: List[DPTNode] = []
        self._leaf_pos: Dict[int, int] = {}
        self._index_leaves()
        self.n_updates = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, spec: PartitionNode, mm_pos: Tuple[int, ...],
               minmax_k: int) -> DPTNode:
        node = DPTNode(self._next_id, spec.rect, len(self.stat_attrs),
                       minmax_attrs=mm_pos, minmax_k=minmax_k)
        self._next_id += 1
        self._nodes.append(node)
        for child_spec in spec.children:
            child = self._build(child_spec, mm_pos, minmax_k)
            child.parent = node
            node.children.append(child)
        return node

    def replace_subtree(self, node: DPTNode,
                        spec: PartitionNode) -> List[DPTNode]:
        """Swap ``node``'s children for a freshly partitioned subtree.

        The partial re-partitioning primitive of Appendix E: the subtree
        below ``node`` is discarded and rebuilt from ``spec``'s children
        (``spec.rect`` must cover the same region).  ``node`` itself and
        everything outside the subtree keep their statistics.  Returns
        the new subtree nodes (excluding ``node``); the caller is
        responsible for seeding their statistics and re-routing strata.
        """
        if not node.rect.contains_rect(spec.rect) and \
                not spec.rect.contains_rect(node.rect):
            raise ValueError("replacement spec does not cover the node")
        node.children = []
        before = len(self._nodes)
        # _build appends to _nodes; rebuild the registry afterwards so
        # discarded nodes disappear from iteration.
        for child_spec in spec.children:
            child = self._build(child_spec, self._mm_pos, self._minmax_k)
            child.parent = node
            node.children.append(child)
        new_nodes = self._nodes[before:]
        self._nodes = []
        stack = [self.root]
        while stack:
            n = stack.pop()
            self._nodes.append(n)
            stack.extend(n.children)
        self._index_leaves()
        return new_nodes

    def _index_leaves(self) -> None:
        self.leaves = [n for n in self._nodes if n.is_leaf]
        self._leaf_pos = {n.node_id: i for i, n in enumerate(self.leaves)}

    def subtree_leaf_count(self, node: DPTNode) -> int:
        count = 0
        stack = [node]
        while stack:
            n = stack.pop()
            if n.is_leaf:
                count += 1
            stack.extend(n.children)
        return count

    def add_catchup_row_subtree(self, subtree_root: DPTNode,
                                row: np.ndarray) -> None:
        """Catch-up propagation restricted to a subtree (Appendix E).

        Used when seeding a partially re-partitioned region: the ancestor
        path keeps its statistics, only the fresh descendants accumulate.
        """
        stats = self._stat_values(row)
        coords = self._coords(row)
        node = subtree_root
        while not node.is_leaf:
            for child in node.children:
                if child.rect.contains_point(coords):
                    node = child
                    break
            else:
                node = min(node.children,
                           key=lambda c: _rect_distance(c.rect, coords))
            node.add_catchup(stats)

    def _inflate_edges(self) -> None:
        """Extend boundary partitions to infinity so every future tuple
        routes to a leaf (new data may fall outside the build-time domain).
        """
        orig = self.root.rect
        for node in self._nodes:
            lo = list(node.rect.lo)
            hi = list(node.rect.hi)
            for j in range(len(lo)):
                if lo[j] == orig.lo[j]:
                    lo[j] = -math.inf
                if hi[j] == orig.hi[j]:
                    hi[j] = math.inf
            node.rect = Rectangle(tuple(lo), tuple(hi))

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        return len(self.leaves)

    @property
    def h_total(self) -> int:
        return self.root.h

    @property
    def n_current(self) -> float:
        """Live population estimate: snapshot size plus exact net delta."""
        return self.n0 + self.root.delta_count

    def nodes(self) -> Iterator[DPTNode]:
        return iter(self._nodes)

    def stat_pos(self, attr: str) -> int:
        try:
            return self._stat_pos[attr]
        except KeyError:
            raise KeyError(f"attribute {attr!r} is not tracked by this "
                           f"synopsis (tracked: {self.stat_attrs})") from None

    def set_population(self, n0: int) -> None:
        self.n0 = int(n0)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _coords(self, row: np.ndarray) -> np.ndarray:
        return row[self._pred_idx]

    def _stat_values(self, row: np.ndarray) -> np.ndarray:
        return row[self._stat_idx]

    def route_leaf(self, coords: Sequence[float]) -> DPTNode:
        """The leaf whose partition contains ``coords``."""
        node = self.root
        while not node.is_leaf:
            for child in node.children:
                if child.rect.contains_point(coords):
                    node = child
                    break
            else:  # numeric edge case: snap to the nearest child
                node = min(node.children,
                           key=lambda c: _rect_distance(c.rect, coords))
        return node

    def _path(self, coords: Sequence[float]) -> List[DPTNode]:
        path = [self.root]
        node = self.root
        while not node.is_leaf:
            for child in node.children:
                if child.rect.contains_point(coords):
                    node = child
                    break
            else:
                node = min(node.children,
                           key=lambda c: _rect_distance(c.rect, coords))
            path.append(node)
        return path

    def _route_batch(self, coords: np.ndarray
                     ) -> Tuple[List[Tuple[DPTNode, np.ndarray]],
                                np.ndarray]:
        """Route an ``(n, d)`` coordinate batch to leaves in one sweep.

        Returns ``(assignments, leaf_of)``: ``assignments`` lists every
        node lying on some row's root-to-leaf path together with the
        indices of the rows routed through it (the root carries all
        rows), ``leaf_of`` maps each row to its leaf's position in
        :attr:`leaves`.  Child selection matches :meth:`_path` exactly -
        first containing child, else nearest by L1 rectangle distance
        with first-minimum tie-breaking - so the batch and per-row paths
        land every row on the same leaf.
        """
        n = coords.shape[0]
        leaf_of = np.empty(n, dtype=np.intp)
        assignments: List[Tuple[DPTNode, np.ndarray]] = []
        stack: List[Tuple[DPTNode, np.ndarray]] = \
            [(self.root, np.arange(n))]
        while stack:
            node, idx = stack.pop()
            assignments.append((node, idx))
            if node.is_leaf:
                leaf_of[idx] = self._leaf_pos[node.node_id]
                continue
            unassigned = np.ones(idx.size, dtype=bool)
            for child in node.children:
                if not unassigned.any():
                    break
                sub = idx[unassigned]
                inside = child.rect.contains_points(coords[sub])
                if inside.any():
                    stack.append((child, sub[inside]))
                    where = np.flatnonzero(unassigned)
                    unassigned[where[inside]] = False
            if unassigned.any():
                # numeric edge case: snap leftovers to the nearest child
                sub = idx[unassigned]
                dists = np.stack([child.rect.distances(coords[sub])
                                  for child in node.children])
                choice = np.argmin(dists, axis=0)
                for ci, child in enumerate(node.children):
                    rows = sub[choice == ci]
                    if rows.size:
                        stack.append((child, rows))
        return assignments, leaf_of

    @staticmethod
    def _as_batch(rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise ValueError("rows must be a 2-D (n, n_attrs) array")
        return rows

    # ------------------------------------------------------------------ #
    # maintenance (Figure 3)
    # ------------------------------------------------------------------ #
    def insert_row(self, row: np.ndarray) -> DPTNode:
        leaf_of = self.insert_rows(
            np.asarray(row, dtype=np.float64)[None, :])
        return self.leaves[int(leaf_of[0])]

    def delete_row(self, row: np.ndarray) -> DPTNode:
        leaf_of = self.delete_rows(
            np.asarray(row, dtype=np.float64)[None, :])
        return self.leaves[int(leaf_of[0])]

    def insert_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized insert of an ``(n, n_attrs)`` row block.

        Every node on a root-to-leaf path receives its rows' delta
        statistics as one grouped accumulation instead of n scalar
        updates.  Returns per-row leaf positions (indices into
        :attr:`leaves`).
        """
        rows = self._as_batch(rows)
        n = rows.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.intp)
        self.n_updates += n
        if n == 1:
            # scalar route: a one-row reduction equals the row exactly,
            # so this path is bit-identical to the batched one
            stats = rows[0, self._stat_idx]
            path = self._path(rows[0, self._pred_idx])
            for node in path:
                node.apply_insert(stats)
            return np.array([self._leaf_pos[path[-1].node_id]],
                            dtype=np.intp)
        stats = rows[:, self._stat_idx]
        assignments, leaf_of = self._route_batch(rows[:, self._pred_idx])
        for node, idx in assignments:
            node.apply_insert_batch(stats[idx])
        return leaf_of

    def delete_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized delete of an ``(n, n_attrs)`` row block."""
        rows = self._as_batch(rows)
        n = rows.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.intp)
        self.n_updates += n
        if n == 1:
            stats = rows[0, self._stat_idx]
            path = self._path(rows[0, self._pred_idx])
            for node in path:
                node.apply_delete(stats)
            return np.array([self._leaf_pos[path[-1].node_id]],
                            dtype=np.intp)
        stats = rows[:, self._stat_idx]
        assignments, leaf_of = self._route_batch(rows[:, self._pred_idx])
        for node, idx in assignments:
            node.apply_delete_batch(stats[idx])
        return leaf_of

    def add_catchup_row(self, row: np.ndarray) -> DPTNode:
        """Propagate one archival sample through the tree (Section 4.3)."""
        row = np.asarray(row, dtype=np.float64)
        stats = row[self._stat_idx]
        path = self._path(row[self._pred_idx])
        for node in path:
            node.add_catchup(stats)
        return path[-1]

    def add_catchup_rows(self, rows: np.ndarray) -> None:
        """Vectorized catch-up: one grouped accumulation per path node."""
        rows = self._as_batch(rows)
        if rows.shape[0] == 0:
            return
        stats = rows[:, self._stat_idx]
        assignments, _ = self._route_batch(rows[:, self._pred_idx])
        for node, idx in assignments:
            node.add_catchup_batch(stats[idx])

    # ------------------------------------------------------------------ #
    # query processing (Section 4.4)
    # ------------------------------------------------------------------ #
    def frontier(self, rect: Rectangle
                 ) -> Tuple[List[DPTNode], List[DPTNode]]:
        """Step 1: ``(R_cover, R_partial)`` node sets for a predicate."""
        cover: List[DPTNode] = []
        partial: List[DPTNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not rect.intersects(node.rect):
                continue
            if rect.contains_rect(node.rect):
                cover.append(node)
            elif node.is_leaf:
                partial.append(node)
            else:
                stack.extend(node.children)
        return cover, partial

    def query(self, query: Query, leaf_samples: LeafSamplesFn
              ) -> QueryResult:
        """Answer an aggregate query from the synopsis alone."""
        if query.predicate_attrs != self.predicate_attrs:
            raise ValueError(
                f"query predicate attrs {query.predicate_attrs} do not "
                f"match synopsis attrs {self.predicate_attrs}")
        cover, partial = self.frontier(query.rect)
        if query.agg in (AggFunc.SUM, AggFunc.COUNT):
            return self._query_sum_count(query, cover, partial, leaf_samples)
        if query.agg is AggFunc.AVG:
            return self._query_avg(query, cover, partial, leaf_samples)
        if query.agg in (AggFunc.VARIANCE, AggFunc.STDDEV):
            return self._query_variance(query, cover, partial,
                                        leaf_samples)
        return self._query_minmax(query, cover, partial, leaf_samples)

    # -- helpers -------------------------------------------------------- #
    def _matched(self, query: Query, rows: np.ndarray
                 ) -> Tuple[np.ndarray, int]:
        """(matched aggregation values, stratum size) for a partial leaf."""
        m_i = rows.shape[0]
        if m_i == 0:
            return np.empty(0), 0
        mask = np.ones(m_i, dtype=bool)
        for dim, col in enumerate(self._pred_idx):
            vals = rows[:, col]
            mask &= (vals >= query.rect.lo[dim]) & \
                    (vals <= query.rect.hi[dim])
        if query.agg is AggFunc.COUNT:
            return np.ones(int(mask.sum())), m_i
        attr_col = self.schema.index(query.attr)
        return rows[mask, attr_col], m_i

    def _query_sum_count(self, query: Query, cover: List[DPTNode],
                         partial: List[DPTNode],
                         leaf_samples: LeafSamplesFn) -> QueryResult:
        is_count = query.agg is AggFunc.COUNT
        pos = None if is_count else self.stat_pos(query.attr)
        agg = 0.0
        var_c = 0.0
        all_exact = True
        for node in cover:
            if is_count:
                agg += node.count_estimate(self.n0, self.h_total)
            else:
                agg += node.sum_estimate(pos, self.n0, self.h_total)
                var_c += node.catchup_var_sum(pos, self.n0, self.h_total)
            all_exact = all_exact and node.exact
        samp = 0.0
        var_s = 0.0
        for leaf in partial:
            rows = leaf_samples(leaf)
            matched, m_i = self._matched(query, rows)
            n_i = leaf.count_estimate(self.n0, self.h_total)
            if is_count:
                contrib = estimators.count_partial(n_i, m_i,
                                                   matched.shape[0])
            else:
                contrib = estimators.sum_partial(n_i, m_i, matched)
            samp += contrib.estimate
            var_s += contrib.variance
        exact = all_exact and not partial
        return QueryResult(agg + samp, var_c, var_s, exact,
                           n_covered=len(cover), n_partial=len(partial))

    def _query_avg(self, query: Query, cover: List[DPTNode],
                   partial: List[DPTNode],
                   leaf_samples: LeafSamplesFn) -> QueryResult:
        pos = self.stat_pos(query.attr)
        nodes = cover + partial
        n_q = sum(n.count_estimate(self.n0, self.h_total) for n in nodes)
        if n_q <= 0:
            return QueryResult(math.nan, 0.0, 0.0, False,
                               n_covered=len(cover), n_partial=len(partial))
        est = 0.0
        var_c = 0.0
        all_exact = True
        for node in cover:
            est += node.sum_estimate(pos, self.n0, self.h_total) / n_q
            w_i = node.count_estimate(self.n0, self.h_total) / n_q
            var_c += node.catchup_var_avg(pos, w_i)
            all_exact = all_exact and node.exact
        var_s = 0.0
        for leaf in partial:
            rows = leaf_samples(leaf)
            matched, m_i = self._matched(query, rows)
            n_i = leaf.count_estimate(self.n0, self.h_total)
            contrib = estimators.avg_partial(n_i, n_q, m_i, matched)
            est += contrib.estimate
            var_s += contrib.variance
        exact = all_exact and not partial
        return QueryResult(est, var_c, var_s, exact,
                           n_covered=len(cover), n_partial=len(partial))

    def _query_variance(self, query: Query, cover: List[DPTNode],
                        partial: List[DPTNode],
                        leaf_samples: LeafSamplesFn) -> QueryResult:
        """VARIANCE/STDDEV composed from COUNT, SUM and sum-of-squares.

        Section 6.6: "aggregate functions such as STDDEV that can be
        composed using SUM and CNT" - every node maintains sum(a^2)
        alongside sum(a), so E[a^2] - E[a]^2 is a plug-in estimate.
        No confidence interval is reported (the delta-method variance of
        the composition is out of the paper's scope); ``details`` flags
        this.
        """
        pos = self.stat_pos(query.attr)
        count_est = 0.0
        sum_est = 0.0
        sumsq_est = 0.0
        all_exact = True
        for node in cover:
            count_est += node.count_estimate(self.n0, self.h_total)
            sum_est += node.sum_estimate(pos, self.n0, self.h_total)
            sumsq_est += node.sumsq_estimate(pos, self.n0, self.h_total)
            all_exact = all_exact and node.exact
        for leaf in partial:
            rows = leaf_samples(leaf)
            matched, m_i = self._matched(
                query.with_agg(AggFunc.SUM, query.attr), rows)
            if m_i <= 0:
                continue
            n_i = leaf.count_estimate(self.n0, self.h_total)
            scale = n_i / m_i
            count_est += scale * matched.shape[0]
            sum_est += scale * float(matched.sum())
            sumsq_est += scale * float((matched * matched).sum())
        if count_est <= 0:
            return QueryResult(math.nan, 0.0, 0.0, False,
                               n_covered=len(cover),
                               n_partial=len(partial),
                               details={"ci": "unavailable"})
        mean = sum_est / count_est
        variance = max(0.0, sumsq_est / count_est - mean * mean)
        est = variance if query.agg is AggFunc.VARIANCE else \
            math.sqrt(variance)
        exact = all_exact and not partial
        return QueryResult(est, 0.0, 0.0, exact,
                           n_covered=len(cover), n_partial=len(partial),
                           details={"ci": "unavailable"})

    def _query_minmax(self, query: Query, cover: List[DPTNode],
                      partial: List[DPTNode],
                      leaf_samples: LeafSamplesFn) -> QueryResult:
        pos = self.stat_pos(query.attr)
        is_max = query.agg is AggFunc.MAX
        candidates: List[float] = []
        all_exact = True
        for node in cover:
            value, exact = (node.max_estimate(pos) if is_max
                            else node.min_estimate(pos))
            if value is not None:
                candidates.append(value)
                all_exact = all_exact and exact
        for leaf in partial:
            rows = leaf_samples(leaf)
            matched, _ = self._matched(
                query.with_agg(AggFunc.SUM, query.attr), rows)
            if matched.shape[0]:
                candidates.append(float(matched.max() if is_max
                                        else matched.min()))
        if not candidates:
            return QueryResult(math.nan, 0.0, 0.0, False,
                               n_covered=len(cover), n_partial=len(partial))
        est = max(candidates) if is_max else min(candidates)
        exact = all_exact and not partial
        return QueryResult(est, 0.0, 0.0, exact,
                           n_covered=len(cover), n_partial=len(partial))


def _rect_distance(rect: Rectangle, coords: Sequence[float]) -> float:
    """L1 distance from a point to a rectangle (0 when inside)."""
    dist = 0.0
    for lo, hi, x in zip(rect.lo, rect.hi, coords):
        if x < lo:
            dist += lo - x
        elif x > hi:
            dist += x - hi
    return dist
