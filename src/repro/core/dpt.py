"""The Dynamic Partition Tree (paper Section 4).

A DPT is the same two-layer structure as PASS's static partition tree - a
hierarchical rectangular partitioning with per-node aggregate statistics
and stratified samples at the leaves - represented so that every piece is
incrementally maintainable:

* inserts/deletes update the exact delta statistics of the root-to-leaf
  path (Figure 3) and the MIN/MAX heaps;
* node snapshot statistics are *estimates* accumulated from catch-up
  samples (Section 4.3), so a freshly re-initialized tree is usable
  immediately and sharpens in the background;
* leaf samples are virtual strata of the pooled reservoir, provided at
  query time by a caller-supplied ``leaf_samples`` function so the tree
  itself stays storage-agnostic.

Query processing (Section 4.4) decomposes a predicate into fully covered
nodes (answered from node statistics, contributing catch-up variance
nu_c) and partially covered leaves (answered from stratified samples,
contributing nu_s); see :mod:`repro.core.estimators` for the formulas.

Maintenance is vectorized: :meth:`DynamicPartitionTree.insert_rows` /
:meth:`~DynamicPartitionTree.delete_rows` /
:meth:`~DynamicPartitionTree.add_catchup_rows` route an ``(n, d)``
coordinate batch to leaves with vectorized rectangle tests and apply
grouped per-node statistics along the root-to-leaf paths; the per-row
methods delegate to the same machinery.

Query processing is batched the same way:
:meth:`DynamicPartitionTree.query_many` computes the frontier of every
query rectangle in one shared traversal (:meth:`~DynamicPartitionTree.
frontier_many`) and evaluates each partial leaf's sample matrix against
all of its queries' rectangles in one broadcasted comparison; the
per-query :meth:`~DynamicPartitionTree.query` is a thin wrapper over the
same path, so batched and sequential answers are identical.
"""

from __future__ import annotations

import math
from typing import (Callable, Dict, Iterator, List, NamedTuple, Optional,
                    Sequence, Tuple)

import numpy as np

from ..partitioning.spec import PartitionNode
from . import estimators
from .node import DPTNode
from .queries import AggFunc, Query, QueryResult, Rectangle

LeafSamplesFn = Callable[[DPTNode], np.ndarray]


class _LeafMoments(NamedTuple):
    """Matched-sample moments of one (partial leaf, query) pair."""

    m: int        # stratum size m_i
    count: int    # number of matched sample rows
    s: float      # sum of matched aggregation values
    s2: float     # sum of squares of matched aggregation values
    vmin: float   # min of matched values (+inf when none matched)
    vmax: float   # max of matched values (-inf when none matched)


_NO_SAMPLES = _LeafMoments(0, 0, 0.0, 0.0, math.inf, -math.inf)

# per-query moments provider for a partial leaf
MomentsFn = Callable[[DPTNode], _LeafMoments]


class _NodeMemo:
    """Per-batch memo of node statistic scalars.

    Queries in one batch overlap heavily on covered nodes; memoizing per
    (node, statistic) turns the repeated estimate method calls into dict
    hits while keeping the per-query accumulation order - and therefore
    the float result - exactly what a solo :meth:`DynamicPartitionTree.
    query` computes.
    """

    __slots__ = ("_tree", "_count", "_sum", "_sumsq", "_varsum",
                 "_varbase", "_minmax")

    def __init__(self, tree: "DynamicPartitionTree") -> None:
        self._tree = tree
        self._count: Dict[int, float] = {}
        self._sum: Dict[Tuple[int, int], float] = {}
        self._sumsq: Dict[Tuple[int, int], float] = {}
        self._varsum: Dict[Tuple[int, int], float] = {}
        self._varbase: Dict[Tuple[int, int], float] = {}
        self._minmax: Dict[Tuple[int, int, bool],
                           Tuple[Optional[float], bool]] = {}

    def count(self, node: DPTNode) -> float:
        v = self._count.get(node.node_id)
        if v is None:
            t = self._tree
            v = node.count_estimate(t.n0, t.h_total)
            self._count[node.node_id] = v
        return v

    def sum(self, node: DPTNode, pos: int) -> float:
        key = (node.node_id, pos)
        v = self._sum.get(key)
        if v is None:
            t = self._tree
            v = node.sum_estimate(pos, t.n0, t.h_total)
            self._sum[key] = v
        return v

    def sumsq(self, node: DPTNode, pos: int) -> float:
        key = (node.node_id, pos)
        v = self._sumsq.get(key)
        if v is None:
            t = self._tree
            v = node.sumsq_estimate(pos, t.n0, t.h_total)
            self._sumsq[key] = v
        return v

    def varsum(self, node: DPTNode, pos: int) -> float:
        key = (node.node_id, pos)
        v = self._varsum.get(key)
        if v is None:
            t = self._tree
            v = node.catchup_var_sum(pos, t.n0, t.h_total)
            self._varsum[key] = v
        return v

    def varbase(self, node: DPTNode, pos: int) -> float:
        key = (node.node_id, pos)
        v = self._varbase.get(key)
        if v is None:
            v = node.catchup_var_base(pos)
            self._varbase[key] = v
        return v

    def minmax(self, node: DPTNode, pos: int, is_max: bool
               ) -> Tuple[Optional[float], bool]:
        key = (node.node_id, pos, is_max)
        v = self._minmax.get(key)
        if v is None:
            v = node.max_estimate(pos) if is_max \
                else node.min_estimate(pos)
            self._minmax[key] = v
        return v


class DynamicPartitionTree:
    """A partition-tree synopsis over one query template."""

    def __init__(self, spec: PartitionNode, schema: Sequence[str],
                 predicate_attrs: Sequence[str],
                 stat_attrs: Optional[Sequence[str]] = None,
                 minmax_attrs: Optional[Sequence[str]] = None,
                 minmax_k: int = 32) -> None:
        self.schema = tuple(schema)
        self.predicate_attrs = tuple(predicate_attrs)
        if spec.rect.dim != len(self.predicate_attrs):
            raise ValueError("spec dimensionality != #predicate attributes")
        self.stat_attrs = tuple(stat_attrs) if stat_attrs else self.schema
        self._stat_pos: Dict[str, int] = {a: i for i, a in
                                          enumerate(self.stat_attrs)}
        self._pred_idx = np.array([self.schema.index(a)
                                   for a in self.predicate_attrs])
        self._stat_idx = np.array([self.schema.index(a)
                                   for a in self.stat_attrs])
        minmax_attrs = tuple(minmax_attrs) if minmax_attrs is not None \
            else self.stat_attrs
        self._mm_pos = tuple(self._stat_pos[a] for a in minmax_attrs
                             if a in self._stat_pos)
        self._minmax_k = minmax_k
        self.n0 = 0                       # snapshot population at epoch start
        self._nodes: List[DPTNode] = []
        self._next_id = 0
        self.root = self._build(spec, self._mm_pos, minmax_k)
        self._inflate_edges()
        self.leaves: List[DPTNode] = []
        self._leaf_pos: Dict[int, int] = {}
        self._index_leaves()
        self.n_updates = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, spec: PartitionNode, mm_pos: Tuple[int, ...],
               minmax_k: int) -> DPTNode:
        node = DPTNode(self._next_id, spec.rect, len(self.stat_attrs),
                       minmax_attrs=mm_pos, minmax_k=minmax_k)
        self._next_id += 1
        self._nodes.append(node)
        for child_spec in spec.children:
            child = self._build(child_spec, mm_pos, minmax_k)
            child.parent = node
            node.children.append(child)
        return node

    def replace_subtree(self, node: DPTNode,
                        spec: PartitionNode) -> List[DPTNode]:
        """Swap ``node``'s children for a freshly partitioned subtree.

        The partial re-partitioning primitive of Appendix E: the subtree
        below ``node`` is discarded and rebuilt from ``spec``'s children
        (``spec.rect`` must cover the same region).  ``node`` itself and
        everything outside the subtree keep their statistics.  Returns
        the new subtree nodes (excluding ``node``); the caller is
        responsible for seeding their statistics and re-routing strata.
        """
        if not node.rect.contains_rect(spec.rect) and \
                not spec.rect.contains_rect(node.rect):
            raise ValueError("replacement spec does not cover the node")
        node.children = []
        before = len(self._nodes)
        # _build appends to _nodes; rebuild the registry afterwards so
        # discarded nodes disappear from iteration.
        for child_spec in spec.children:
            child = self._build(child_spec, self._mm_pos, self._minmax_k)
            child.parent = node
            node.children.append(child)
        new_nodes = self._nodes[before:]
        self._nodes = []
        stack = [self.root]
        while stack:
            n = stack.pop()
            self._nodes.append(n)
            stack.extend(n.children)
        self._index_leaves()
        return new_nodes

    def _index_leaves(self) -> None:
        self.leaves = [n for n in self._nodes if n.is_leaf]
        self._leaf_pos = {n.node_id: i for i, n in enumerate(self.leaves)}
        self._index_frontier_order()

    def _index_frontier_order(self) -> None:
        """Precompute the frontier traversal as flat arrays.

        ``_dfs_nodes`` lists every node in the exact order the scalar
        :meth:`frontier` stack visits them (children expanded last-in
        first-out), so batched classification can emit per-query node
        lists in the identical order by walking positions ascending.
        ``_dfs_levels`` groups child->parent links by depth for the
        vectorized reachability propagation.  Node rects only change
        through structure changes, which all funnel through
        :meth:`_index_leaves`.
        """
        order: List[DPTNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(node.children)
        self._dfs_nodes = order
        pos = {n.node_id: i for i, n in enumerate(order)}
        self._dfs_lo = np.array([n.rect.lo for n in order])
        self._dfs_hi = np.array([n.rect.hi for n in order])
        self._dfs_leaf = np.array([n.is_leaf for n in order], dtype=bool)
        depth_of: Dict[int, int] = {}
        levels: List[Tuple[List[int], List[int]]] = []
        for i, node in enumerate(order):
            if node.parent is None:
                depth_of[node.node_id] = 0
                continue
            depth = depth_of[node.parent.node_id] + 1
            depth_of[node.node_id] = depth
            while len(levels) < depth:
                levels.append(([], []))
            levels[depth - 1][0].append(i)
            levels[depth - 1][1].append(pos[node.parent.node_id])
        self._dfs_levels = [(np.array(c, dtype=np.intp),
                             np.array(p, dtype=np.intp))
                            for c, p in levels]

    def subtree_leaf_count(self, node: DPTNode) -> int:
        count = 0
        stack = [node]
        while stack:
            n = stack.pop()
            if n.is_leaf:
                count += 1
            stack.extend(n.children)
        return count

    def add_catchup_row_subtree(self, subtree_root: DPTNode,
                                row: np.ndarray) -> None:
        """Catch-up propagation restricted to a subtree (Appendix E).

        Used when seeding a partially re-partitioned region: the ancestor
        path keeps its statistics, only the fresh descendants accumulate.
        """
        stats = self._stat_values(row)
        coords = self._coords(row)
        node = subtree_root
        while not node.is_leaf:
            for child in node.children:
                if child.rect.contains_point(coords):
                    node = child
                    break
            else:
                node = min(node.children,
                           key=lambda c: _rect_distance(c.rect, coords))
            node.add_catchup(stats)

    def add_catchup_rows_subtree(self, subtree_root: DPTNode,
                                 rows: np.ndarray) -> None:
        """Vectorized subtree catch-up: one grouped pass per node.

        The batched counterpart of :meth:`add_catchup_row_subtree`, used
        by partial re-partitioning to seed a fresh subtree from all the
        pooled samples in its region at once.  Child selection matches
        the scalar path (first containing child, else nearest by L1
        rectangle distance with first-minimum tie-breaking); the subtree
        root itself keeps its statistics, exactly as in the scalar
        routine.
        """
        rows = self._as_batch(rows)
        n = rows.shape[0]
        if n == 0:
            return
        stats = rows[:, self._stat_idx]
        coords = rows[:, self._pred_idx]
        stack: List[Tuple[DPTNode, np.ndarray]] = \
            [(subtree_root, np.arange(n))]
        while stack:
            node, idx = stack.pop()
            if node is not subtree_root:
                node.add_catchup_batch(stats[idx])
            if node.is_leaf:
                continue
            unassigned = np.ones(idx.size, dtype=bool)
            for child in node.children:
                if not unassigned.any():
                    break
                sub = idx[unassigned]
                inside = child.rect.contains_points(coords[sub])
                if inside.any():
                    stack.append((child, sub[inside]))
                    where = np.flatnonzero(unassigned)
                    unassigned[where[inside]] = False
            if unassigned.any():
                # numeric edge case: snap leftovers to the nearest child
                sub = idx[unassigned]
                dists = np.stack([child.rect.distances(coords[sub])
                                  for child in node.children])
                choice = np.argmin(dists, axis=0)
                for ci, child in enumerate(node.children):
                    sel = sub[choice == ci]
                    if sel.size:
                        stack.append((child, sel))

    def _inflate_edges(self) -> None:
        """Extend boundary partitions to infinity so every future tuple
        routes to a leaf (new data may fall outside the build-time domain).
        """
        orig = self.root.rect
        for node in self._nodes:
            lo = list(node.rect.lo)
            hi = list(node.rect.hi)
            for j in range(len(lo)):
                if lo[j] == orig.lo[j]:
                    lo[j] = -math.inf
                if hi[j] == orig.hi[j]:
                    hi[j] = math.inf
            node.rect = Rectangle(tuple(lo), tuple(hi))

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        return len(self.leaves)

    @property
    def h_total(self) -> int:
        return self.root.h

    @property
    def n_current(self) -> float:
        """Live population estimate: snapshot size plus exact net delta."""
        return self.n0 + self.root.delta_count

    def nodes(self) -> Iterator[DPTNode]:
        return iter(self._nodes)

    def stat_pos(self, attr: str) -> int:
        try:
            return self._stat_pos[attr]
        except KeyError:
            raise KeyError(f"attribute {attr!r} is not tracked by this "
                           f"synopsis (tracked: {self.stat_attrs})") from None

    def set_population(self, n0: int) -> None:
        self.n0 = int(n0)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _coords(self, row: np.ndarray) -> np.ndarray:
        return row[self._pred_idx]

    def _stat_values(self, row: np.ndarray) -> np.ndarray:
        return row[self._stat_idx]

    def route_leaf(self, coords: Sequence[float]) -> DPTNode:
        """The leaf whose partition contains ``coords``."""
        node = self.root
        while not node.is_leaf:
            for child in node.children:
                if child.rect.contains_point(coords):
                    node = child
                    break
            else:  # numeric edge case: snap to the nearest child
                node = min(node.children,
                           key=lambda c: _rect_distance(c.rect, coords))
        return node

    def _path(self, coords: Sequence[float]) -> List[DPTNode]:
        path = [self.root]
        node = self.root
        while not node.is_leaf:
            for child in node.children:
                if child.rect.contains_point(coords):
                    node = child
                    break
            else:
                node = min(node.children,
                           key=lambda c: _rect_distance(c.rect, coords))
            path.append(node)
        return path

    def _route_batch(self, coords: np.ndarray
                     ) -> Tuple[List[Tuple[DPTNode, np.ndarray]],
                                np.ndarray]:
        """Route an ``(n, d)`` coordinate batch to leaves in one sweep.

        Returns ``(assignments, leaf_of)``: ``assignments`` lists every
        node lying on some row's root-to-leaf path together with the
        indices of the rows routed through it (the root carries all
        rows), ``leaf_of`` maps each row to its leaf's position in
        :attr:`leaves`.  Child selection matches :meth:`_path` exactly -
        first containing child, else nearest by L1 rectangle distance
        with first-minimum tie-breaking - so the batch and per-row paths
        land every row on the same leaf.
        """
        n = coords.shape[0]
        leaf_of = np.empty(n, dtype=np.intp)
        assignments: List[Tuple[DPTNode, np.ndarray]] = []
        stack: List[Tuple[DPTNode, np.ndarray]] = \
            [(self.root, np.arange(n))]
        while stack:
            node, idx = stack.pop()
            assignments.append((node, idx))
            if node.is_leaf:
                leaf_of[idx] = self._leaf_pos[node.node_id]
                continue
            unassigned = np.ones(idx.size, dtype=bool)
            for child in node.children:
                if not unassigned.any():
                    break
                sub = idx[unassigned]
                inside = child.rect.contains_points(coords[sub])
                if inside.any():
                    stack.append((child, sub[inside]))
                    where = np.flatnonzero(unassigned)
                    unassigned[where[inside]] = False
            if unassigned.any():
                # numeric edge case: snap leftovers to the nearest child
                sub = idx[unassigned]
                dists = np.stack([child.rect.distances(coords[sub])
                                  for child in node.children])
                choice = np.argmin(dists, axis=0)
                for ci, child in enumerate(node.children):
                    rows = sub[choice == ci]
                    if rows.size:
                        stack.append((child, rows))
        return assignments, leaf_of

    def _as_batch(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.size == 0:
            # Accept (), (0,) and (0, d): an empty batch routes nowhere,
            # so it must not reach the (n, d) routing code mis-shaped.
            return rows.reshape(0, len(self.schema))
        if rows.ndim != 2:
            raise ValueError("rows must be a 2-D (n, n_attrs) array")
        return rows

    # ------------------------------------------------------------------ #
    # maintenance (Figure 3)
    # ------------------------------------------------------------------ #
    def insert_row(self, row: np.ndarray) -> DPTNode:
        leaf_of = self.insert_rows(
            np.asarray(row, dtype=np.float64)[None, :])
        return self.leaves[int(leaf_of[0])]

    def delete_row(self, row: np.ndarray) -> DPTNode:
        leaf_of = self.delete_rows(
            np.asarray(row, dtype=np.float64)[None, :])
        return self.leaves[int(leaf_of[0])]

    def insert_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized insert of an ``(n, n_attrs)`` row block.

        Every node on a root-to-leaf path receives its rows' delta
        statistics as one grouped accumulation instead of n scalar
        updates.  Returns per-row leaf positions (indices into
        :attr:`leaves`).
        """
        rows = self._as_batch(rows)
        n = rows.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.intp)
        self.n_updates += n
        if n == 1:
            # scalar route: a one-row reduction equals the row exactly,
            # so this path is bit-identical to the batched one
            stats = rows[0, self._stat_idx]
            path = self._path(rows[0, self._pred_idx])
            for node in path:
                node.apply_insert(stats)
            return np.array([self._leaf_pos[path[-1].node_id]],
                            dtype=np.intp)
        stats = rows[:, self._stat_idx]
        assignments, leaf_of = self._route_batch(rows[:, self._pred_idx])
        for node, idx in assignments:
            node.apply_insert_batch(stats[idx])
        return leaf_of

    def delete_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized delete of an ``(n, n_attrs)`` row block."""
        rows = self._as_batch(rows)
        n = rows.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.intp)
        self.n_updates += n
        if n == 1:
            stats = rows[0, self._stat_idx]
            path = self._path(rows[0, self._pred_idx])
            for node in path:
                node.apply_delete(stats)
            return np.array([self._leaf_pos[path[-1].node_id]],
                            dtype=np.intp)
        stats = rows[:, self._stat_idx]
        assignments, leaf_of = self._route_batch(rows[:, self._pred_idx])
        for node, idx in assignments:
            node.apply_delete_batch(stats[idx])
        return leaf_of

    def add_catchup_row(self, row: np.ndarray) -> DPTNode:
        """Propagate one archival sample through the tree (Section 4.3)."""
        row = np.asarray(row, dtype=np.float64)
        stats = row[self._stat_idx]
        path = self._path(row[self._pred_idx])
        for node in path:
            node.add_catchup(stats)
        return path[-1]

    def add_catchup_rows(self, rows: np.ndarray) -> None:
        """Vectorized catch-up: one grouped accumulation per path node."""
        rows = self._as_batch(rows)
        if rows.shape[0] == 0:
            return
        stats = rows[:, self._stat_idx]
        assignments, _ = self._route_batch(rows[:, self._pred_idx])
        for node, idx in assignments:
            node.add_catchup_batch(stats[idx])

    # ------------------------------------------------------------------ #
    # query processing (Section 4.4)
    # ------------------------------------------------------------------ #
    def frontier(self, rect: Rectangle
                 ) -> Tuple[List[DPTNode], List[DPTNode]]:
        """Step 1: ``(R_cover, R_partial)`` node sets for a predicate."""
        cover: List[DPTNode] = []
        partial: List[DPTNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not rect.intersects(node.rect):
                continue
            if rect.contains_rect(node.rect):
                cover.append(node)
            elif node.is_leaf:
                partial.append(node)
            else:
                stack.extend(node.children)
        return cover, partial

    def frontier_many(self, rects: Sequence[Rectangle]
                      ) -> Tuple[List[List[DPTNode]], List[List[DPTNode]]]:
        """Step 1 for a whole query batch in one vectorized pass.

        Every (node, query) pair is classified at once: two broadcasted
        comparisons give the intersect/contain matrices, a level-wise
        propagation marks which nodes each query's traversal would
        actually reach (a node is reached iff its parent is reached,
        intersecting and not contained), and one ``nonzero`` pass emits
        each query's cover/partial nodes.  Positions ascend in the
        scalar traversal's visit order (:meth:`_index_frontier_order`),
        and a pruned DFS visits a subsequence of the unpruned one, so
        each query's lists hold the same nodes in the same order as
        :meth:`frontier` returns.
        """
        nq = len(rects)
        lo = np.array([r.lo for r in rects], dtype=np.float64)
        hi = np.array([r.hi for r in rects], dtype=np.float64)
        nlo = self._dfs_lo[:, None, :]                 # (n_nodes, 1, d)
        nhi = self._dfs_hi[:, None, :]
        qlo = lo[None, :, :]                           # (1, nq, d)
        qhi = hi[None, :, :]
        inter = ((qlo <= nhi) & (nlo <= qhi)).all(axis=2)
        contain = ((qlo <= nlo) & (nhi <= qhi)).all(axis=2)
        descend = inter & ~contain
        reach = np.empty(inter.shape, dtype=bool)
        reach[0] = True
        for child_pos, parent_pos in self._dfs_levels:
            reach[child_pos] = reach[parent_pos] & descend[parent_pos]
        nodes = self._dfs_nodes
        covers: List[List[DPTNode]] = [[] for _ in range(nq)]
        partials: List[List[DPTNode]] = [[] for _ in range(nq)]
        qi_arr, pos_arr = np.nonzero((reach & contain).T)
        for qi, p in zip(qi_arr.tolist(), pos_arr.tolist()):
            covers[qi].append(nodes[p])
        qi_arr, pos_arr = np.nonzero(
            (reach & descend & self._dfs_leaf[:, None]).T)
        for qi, p in zip(qi_arr.tolist(), pos_arr.tolist()):
            partials[qi].append(nodes[p])
        return covers, partials

    def query(self, query: Query, leaf_samples: LeafSamplesFn
              ) -> QueryResult:
        """Answer an aggregate query from the synopsis alone.

        Thin wrapper over :meth:`query_many`: both paths run the same
        per-query estimation code on the same inputs, so a batch's
        results are bit-for-bit identical to a sequential loop.
        """
        return self.query_many((query,), leaf_samples)[0]

    def query_many(self, queries: Sequence[Query],
                   leaf_samples: LeafSamplesFn) -> List[QueryResult]:
        """Answer a query batch with shared tree and sample passes.

        The frontier computation runs once for the whole batch
        (:meth:`frontier_many`), each partial leaf's sample matrix is
        tested against all of its queries' rectangles in one broadcasted
        comparison (:meth:`_match_masks`), and only the final per-query
        estimation - a pure function of that query's own frontier and
        matched samples - runs per query.  Results are returned in
        request order and match :meth:`query` exactly.
        """
        queries = list(queries)
        if not queries:
            return []
        for query in queries:
            if query.predicate_attrs != self.predicate_attrs:
                raise ValueError(
                    f"query predicate attrs {query.predicate_attrs} do "
                    f"not match synopsis attrs {self.predicate_attrs}")
        if len(queries) == 1:
            cover, partial = self.frontier(queries[0].rect)
            covers, partials = [cover], [partial]
        else:
            covers, partials = self.frontier_many(
                [q.rect for q in queries])
        moments = self._leaf_moments(queries, partials, leaf_samples)
        # Node statistics are memoized across the batch: overlapping
        # cover sets pay one estimate computation per node.
        memo = _NodeMemo(self)
        results: List[QueryResult] = []
        for qi, query in enumerate(queries):
            def moments_of(leaf: DPTNode, qi: int = qi) -> "_LeafMoments":
                return moments[(leaf.node_id, qi)]
            results.append(self._answer(query, covers[qi], partials[qi],
                                        moments_of, memo))
        return results

    def _leaf_moments(self, queries: List[Query],
                      partials: List[List[DPTNode]],
                      leaf_samples: LeafSamplesFn
                      ) -> Dict[Tuple[int, int], "_LeafMoments"]:
        """Matched-sample moments for every (partial leaf, query) pair.

        The batch's partial-leaf sample matrices are concatenated into
        one block, every query rectangle is tested against it in one
        broadcasted comparison, and the per-leaf moments the estimators
        need - matched count, sum, sum of squares, min and max of the
        aggregation attribute - come out of segment reductions
        (``reduceat``) over the leaf boundaries.  A segment reduction
        depends only on that leaf's own rows, so every moment is
        identical to what a single-query evaluation would produce.
        """
        moments: Dict[Tuple[int, int], _LeafMoments] = {}
        leaf_seg: Dict[int, int] = {}     # leaf id -> segment (-1: empty)
        blocks: List[np.ndarray] = []
        pair_lid: List[int] = []
        pair_qi: List[int] = []
        pair_seg: List[int] = []
        for qi, partial in enumerate(partials):
            for leaf in partial:
                lid = leaf.node_id
                seg = leaf_seg.get(lid)
                if seg is None:
                    rows = leaf_samples(leaf)
                    if rows.shape[0] == 0:
                        seg = -1
                    else:
                        seg = len(blocks)
                        blocks.append(rows)
                    leaf_seg[lid] = seg
                if seg < 0:
                    moments[(lid, qi)] = _NO_SAMPLES
                else:
                    pair_lid.append(lid)
                    pair_qi.append(qi)
                    pair_seg.append(seg)
        n_pairs = len(pair_qi)
        if n_pairs == 0:
            return moments
        seg_sizes = np.array([b.shape[0] for b in blocks], dtype=np.intp)
        seg_starts = np.zeros(len(blocks), dtype=np.intp)
        np.cumsum(seg_sizes[:-1], out=seg_starts[1:])
        pool = np.concatenate(blocks, axis=0)
        # Ragged element layout: pair p owns a run of its leaf's m_p rows.
        seg_arr = np.asarray(pair_seg, dtype=np.intp)
        pair_m = seg_sizes[seg_arr]
        bounds = np.zeros(n_pairs + 1, dtype=np.intp)
        np.cumsum(pair_m, out=bounds[1:])
        starts = bounds[:-1]
        idx = (np.arange(int(bounds[-1])) - np.repeat(starts, pair_m) +
               np.repeat(seg_starts[seg_arr], pair_m))
        qlo = np.array([queries[qi].rect.lo for qi in pair_qi])
        qhi = np.array([queries[qi].rect.hi for qi in pair_qi])
        mask = np.ones(idx.shape[0], dtype=bool)
        for dim, col in enumerate(self._pred_idx):
            v = pool[idx, col]
            mask &= (v >= np.repeat(qlo[:, dim], pair_m)) & \
                    (v <= np.repeat(qhi[:, dim], pair_m))
        cnts = np.add.reduceat(mask.astype(np.float64), starts)
        # Aggregation values, each element using its own pair's query
        # attribute (COUNT pairs borrow column 0; their values are never
        # read).
        attr_cols = np.array(
            [0 if queries[qi].agg is AggFunc.COUNT
             else self.schema.index(queries[qi].attr) for qi in pair_qi],
            dtype=np.intp)
        vals = pool[idx, np.repeat(attr_cols, pair_m)]
        mvals = np.where(mask, vals, 0.0)
        s = np.add.reduceat(mvals, starts)
        s2 = np.add.reduceat(mvals * mvals, starts)
        vmin = np.minimum.reduceat(np.where(mask, vals, math.inf), starts)
        vmax = np.maximum.reduceat(np.where(mask, vals, -math.inf),
                                   starts)
        for p in range(n_pairs):
            moments[(pair_lid[p], pair_qi[p])] = _LeafMoments(
                int(pair_m[p]), int(cnts[p]), float(s[p]), float(s2[p]),
                float(vmin[p]), float(vmax[p]))
        return moments

    def _answer(self, query: Query, cover: List[DPTNode],
                partial: List[DPTNode], moments_of: "MomentsFn",
                memo: "_NodeMemo") -> QueryResult:
        if query.agg in (AggFunc.SUM, AggFunc.COUNT):
            return self._answer_sum_count(query, cover, partial,
                                          moments_of, memo)
        if query.agg is AggFunc.AVG:
            return self._answer_avg(query, cover, partial,
                                    moments_of, memo)
        if query.agg in (AggFunc.VARIANCE, AggFunc.STDDEV):
            return self._answer_variance(query, cover, partial,
                                         moments_of, memo)
        return self._answer_minmax(query, cover, partial,
                                   moments_of, memo)

    # -- helpers -------------------------------------------------------- #
    def _match_masks(self, lo: np.ndarray, hi: np.ndarray,
                     rows: np.ndarray) -> np.ndarray:
        """Boolean ``(n_queries, m)`` matrix of rows matching each rect.

        One broadcasted comparison per predicate dimension replaces the
        per-query mask loop; boolean tests are exact, so every mask row
        equals the mask a single-query evaluation would produce.
        """
        mask = np.ones((lo.shape[0], rows.shape[0]), dtype=bool)
        for dim, col in enumerate(self._pred_idx):
            vals = rows[:, col]
            mask &= (vals >= lo[:, dim, None]) & (vals <= hi[:, dim, None])
        return mask

    def _matched(self, query: Query, rows: np.ndarray
                 ) -> Tuple[np.ndarray, int]:
        """(matched aggregation values, stratum size) for a partial leaf."""
        m_i = rows.shape[0]
        if m_i == 0:
            return np.empty(0), 0
        lo = np.asarray(query.rect.lo, dtype=np.float64)[None, :]
        hi = np.asarray(query.rect.hi, dtype=np.float64)[None, :]
        mask = self._match_masks(lo, hi, rows)[0]
        if query.agg is AggFunc.COUNT:
            return np.ones(int(mask.sum())), m_i
        return rows[mask, self.schema.index(query.attr)], m_i

    def _answer_sum_count(self, query: Query, cover: List[DPTNode],
                          partial: List[DPTNode], moments_of: "MomentsFn",
                          memo: "_NodeMemo") -> QueryResult:
        is_count = query.agg is AggFunc.COUNT
        pos = None if is_count else self.stat_pos(query.attr)
        agg = 0.0
        var_c = 0.0
        all_exact = True
        for node in cover:
            if is_count:
                agg += memo.count(node)
            else:
                agg += memo.sum(node, pos)
                var_c += memo.varsum(node, pos)
            all_exact = all_exact and node.exact
        samp = 0.0
        var_s = 0.0
        for leaf in partial:
            mom = moments_of(leaf)
            n_i = memo.count(leaf)
            if is_count:
                c = float(mom.count)
                est, var = estimators.sum_partial_moments(n_i, mom.m, c, c)
            else:
                est, var = estimators.sum_partial_moments(n_i, mom.m,
                                                          mom.s, mom.s2)
            samp += est
            var_s += var
        exact = all_exact and not partial
        return QueryResult(agg + samp, var_c, var_s, exact,
                           n_covered=len(cover), n_partial=len(partial))

    def _answer_avg(self, query: Query, cover: List[DPTNode],
                    partial: List[DPTNode], moments_of: "MomentsFn",
                    memo: "_NodeMemo") -> QueryResult:
        pos = self.stat_pos(query.attr)
        n_q = 0.0
        for node in cover:
            n_q += memo.count(node)
        for leaf in partial:
            n_q += memo.count(leaf)
        # The normalizer rides along in ``details`` so shard merging can
        # reweight per-shard means into the union estimator (merge.py).
        if n_q <= 0:
            return QueryResult(math.nan, 0.0, 0.0, False,
                               n_covered=len(cover), n_partial=len(partial),
                               details={"n_q": n_q})
        est = 0.0
        var_c = 0.0
        all_exact = True
        for node in cover:
            est += memo.sum(node, pos) / n_q
            w_i = memo.count(node) / n_q
            var_c += (w_i * w_i) * memo.varbase(node, pos)
            all_exact = all_exact and node.exact
        var_s = 0.0
        for leaf in partial:
            mom = moments_of(leaf)
            c_est, c_var = estimators.avg_partial_moments(
                memo.count(leaf), n_q, mom.m, mom.count, mom.s, mom.s2)
            est += c_est
            var_s += c_var
        exact = all_exact and not partial
        return QueryResult(est, var_c, var_s, exact,
                           n_covered=len(cover), n_partial=len(partial),
                           details={"n_q": n_q})

    def _answer_variance(self, query: Query, cover: List[DPTNode],
                         partial: List[DPTNode], moments_of: "MomentsFn",
                         memo: "_NodeMemo") -> QueryResult:
        """VARIANCE/STDDEV composed from COUNT, SUM and sum-of-squares.

        Section 6.6: "aggregate functions such as STDDEV that can be
        composed using SUM and CNT" - every node maintains sum(a^2)
        alongside sum(a), so E[a^2] - E[a]^2 is a plug-in estimate.
        No confidence interval is reported (the delta-method variance of
        the composition is out of the paper's scope); ``details`` flags
        this.
        """
        pos = self.stat_pos(query.attr)
        count_est = 0.0
        sum_est = 0.0
        sumsq_est = 0.0
        all_exact = True
        for node in cover:
            count_est += memo.count(node)
            sum_est += memo.sum(node, pos)
            sumsq_est += memo.sumsq(node, pos)
            all_exact = all_exact and node.exact
        for leaf in partial:
            mom = moments_of(leaf)
            if mom.m <= 0:
                continue
            count, total, totalsq = estimators.moments_partial(
                memo.count(leaf), mom.m, mom.count, mom.s, mom.s2)
            count_est += count
            sum_est += total
            sumsq_est += totalsq
        # Plug-in moments ride along in ``details`` so shard merging can
        # re-compose the union's VARIANCE/STDDEV exactly (merge.py).
        moments = (count_est, sum_est, sumsq_est)
        if count_est <= 0:
            return QueryResult(math.nan, 0.0, 0.0, False,
                               n_covered=len(cover),
                               n_partial=len(partial),
                               details={"ci": "unavailable",
                                        "moments": moments})
        mean = sum_est / count_est
        variance = max(0.0, sumsq_est / count_est - mean * mean)
        est = variance if query.agg is AggFunc.VARIANCE else \
            math.sqrt(variance)
        exact = all_exact and not partial
        return QueryResult(est, 0.0, 0.0, exact,
                           n_covered=len(cover), n_partial=len(partial),
                           details={"ci": "unavailable",
                                    "moments": moments})

    def _answer_minmax(self, query: Query, cover: List[DPTNode],
                       partial: List[DPTNode], moments_of: "MomentsFn",
                       memo: "_NodeMemo") -> QueryResult:
        pos = self.stat_pos(query.attr)
        is_max = query.agg is AggFunc.MAX
        candidates: List[float] = []
        all_exact = True
        for node in cover:
            value, exact = memo.minmax(node, pos, is_max)
            if value is None:
                # A covered node with no extremum information at all
                # cannot prove the answer: its true MIN/MAX is unknown,
                # so the result must not be reported as exact.
                all_exact = False
                continue
            candidates.append(value)
            all_exact = all_exact and exact
        for leaf in partial:
            mom = moments_of(leaf)
            if mom.count > 0:
                candidates.append(mom.vmax if is_max else mom.vmin)
        if not candidates:
            # Every candidate source was missing: no estimate exists,
            # and the answer is certainly not exact.
            return QueryResult(math.nan, 0.0, 0.0, False,
                               n_covered=len(cover), n_partial=len(partial))
        est = max(candidates) if is_max else min(candidates)
        exact = all_exact and not partial
        return QueryResult(est, 0.0, 0.0, exact,
                           n_covered=len(cover), n_partial=len(partial))


def _rect_distance(rect: Rectangle, coords: Sequence[float]) -> float:
    """L1 distance from a point to a rectangle (0 when inside)."""
    dist = 0.0
    for lo, hi, x in zip(rect.lo, rect.hi, coords):
        if x < lo:
            dist += lo - x
        elif x > hi:
            dist += x - hi
    return dist
