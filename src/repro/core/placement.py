"""Shard placement shared by in-process and multi-process coordinators.

:class:`~repro.core.sharded.ShardedJanusAQP` and the process-per-shard
serving fleet (:mod:`repro.service.fleet`) answer the same two
questions for every batch: *which shard gets each new row* and *which
shard currently owns a global tid*.  The answers must agree bit-for-bit
- the fleet's acceptance gate is answer-identity with the in-process
engine - so the logic lives here once:

* :func:`place_batch` - the pure placement function (``hash`` /
  ``range`` / ``attr`` modes, identical semantics to the historical
  ``ShardedJanusAQP._place``);
* :func:`strike_attr_bounds` - lazy quantile cuts for ``attr``
  placement, struck from the first batch that carries finite routing
  values;
* :func:`grow_tid_maps` - capacity doubling for the global
  tid-to-(shard, local) maps;
* :func:`stagger_trigger` - the phase-offset of per-shard forced
  repartition counters (the one-shard-rebuilds-at-a-time cadence);
* :class:`PlacementMap` - a lock-guarded tid-map owner for
  coordinators that do *not* hold the shards in-process (the fleet
  coordinator talks to worker processes, so the in-process fan-out's
  map bookkeeping is re-packaged here behind begin/commit methods).

``ShardedJanusAQP`` keeps its historical field layout (tests and
persistence address ``_shard_of`` / ``_local_tid`` directly) and
delegates the logic to the functions below.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["PlacementMap", "grow_tid_maps", "place_batch",
           "stagger_trigger", "strike_attr_bounds"]


def strike_attr_bounds(vals: np.ndarray,
                       n_shards: int) -> Optional[np.ndarray]:
    """Quantile cut values for ``attr`` placement, or ``None``.

    Uses only the finite values (NaNs place onto the last shard and
    must not skew the cuts); with no finite value at all there is
    nothing to cut yet and the caller keeps placing on shard 0 until a
    representative batch arrives.
    """
    finite = vals[np.isfinite(vals)]
    if finite.size == 0:
        return None
    qs = np.arange(1, n_shards) / n_shards
    return np.quantile(finite, qs)


def place_batch(sharding: str, n_shards: int, tids: np.ndarray,
                rows: Optional[np.ndarray] = None, route_col: int = 0,
                attr_bounds: Optional[np.ndarray] = None,
                range_block: int = 8192) -> np.ndarray:
    """Initial shard placement for a new batch (vectorized, pure).

    ``hash``/``range`` place by tid; ``attr`` places by the routing
    attribute's value against ``attr_bounds``.  Values past the outer
    bounds land on the edge shards; NaNs sort past every bound onto the
    last shard - placement never affects correctness, only routing
    selectivity.  With ``attr`` placement and no bounds struck yet the
    whole batch lands on shard 0 (the caller strikes bounds first when
    it can, see :func:`strike_attr_bounds`).
    """
    if sharding == "hash":
        return tids % n_shards
    if sharding == "range":
        return (tids // range_block) % n_shards
    if attr_bounds is None:
        return np.zeros(tids.shape[0], dtype=np.int64)
    vals = rows[:, route_col]
    return np.searchsorted(attr_bounds, vals,
                           side="right").astype(np.int64)


def grow_tid_maps(shard_of: np.ndarray, local_tid: np.ndarray,
                  need: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return tid maps with capacity ``>= need`` (doubling growth).

    The input arrays are returned unchanged when they already fit;
    otherwise fresh arrays are allocated (``-1`` marks dead/unassigned
    slots in ``shard_of``) and the old contents copied over.
    """
    cap = shard_of.shape[0]
    if need <= cap:
        return shard_of, local_tid
    new_cap = max(need, 2 * cap)
    grown_of = np.full(new_cap, -1, dtype=np.int64)
    grown_of[:cap] = shard_of
    grown_local = np.zeros(new_cap, dtype=np.int64)
    grown_local[:cap] = local_tid
    return grown_of, grown_local


def stagger_trigger(shard, shard_id: int, n_shards: int) -> None:
    """Phase-offset a shard's forced-repartition counter.

    Under balanced placement every shard crosses a shared
    ``repartition_every`` threshold in the *same* ingest batch, so all
    N rebuilds would land on one request.  Setting shard s's update
    counter to ``s/N`` of the period right after its first build
    spreads the first firing across the period; afterwards each shard
    re-fires every R local updates and the offsets persist, so at most
    one shard is rebuilding at a time.  Runs on every path that first
    builds a shard - eager initialize, lazy ingest build, rebalance
    into an empty shard, snapshot restore, and a fleet worker's
    warm start - with the identical formula, which the fleet's
    answer-identity gate depends on.
    """
    period = shard.config.repartition_every
    trigger = shard.trigger
    if not period or trigger is None:
        return
    trigger.state.updates_since_repartition = \
        shard_id * int(period) // n_shards


class PlacementMap:
    """Lock-guarded global-tid bookkeeping for an out-of-process fleet.

    Owns what ``ShardedJanusAQP`` keeps inline: the
    global-tid-to-(shard, local-tid) maps, the tid counter and the
    ``attr`` placement bounds.  The begin/commit split mirrors the
    in-process ingest flow - tids are assigned and placed under the
    lock, the (remote) shards ingest outside it, and the ownership rows
    are written back under the lock once the local tids are known - so
    a concurrent liveness probe never sees a half-written batch.
    """

    def __init__(self, n_shards: int, sharding: str,
                 range_block: int = 8192, route_col: int = 0,
                 attr_bounds: Optional[np.ndarray] = None) -> None:
        self.n_shards = int(n_shards)
        self.sharding = sharding
        self.range_block = int(range_block)
        self.route_col = int(route_col)
        self.attr_bounds = attr_bounds  # guarded-by: _map_lock
        self._shard_of = np.full(64, -1, dtype=np.int64)  # guarded-by: _map_lock
        self._local_tid = np.zeros(64, dtype=np.int64)  # guarded-by: _map_lock
        self._next_tid = 0  # guarded-by: _map_lock
        self._map_lock = threading.Lock()

    def restore(self, shard_of: np.ndarray, local_tid: np.ndarray,
                next_tid: int) -> None:
        """Adopt the tid maps of a ``save_sharded`` manifest."""
        next_tid = int(next_tid)
        with self._map_lock:
            self._shard_of, self._local_tid = grow_tid_maps(
                self._shard_of, self._local_tid, max(next_tid, 1))
            self._shard_of[:next_tid] = shard_of
            self._local_tid[:next_tid] = local_tid
            self._next_tid = next_tid

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def begin_insert(self, rows: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Assign global tids and place a row batch; returns
        ``(tids, placement)``.  Ownership is not yet visible - commit
        with :meth:`commit_insert` once the per-shard local tids are
        known."""
        n = rows.shape[0]
        with self._map_lock:
            tids = np.arange(self._next_tid, self._next_tid + n,
                             dtype=np.int64)
            self._next_tid += n
            self._shard_of, self._local_tid = grow_tid_maps(
                self._shard_of, self._local_tid, self._next_tid)
            if self.sharding == "attr" and self.attr_bounds is None:
                self.attr_bounds = strike_attr_bounds(
                    rows[:, self.route_col], self.n_shards)
            placement = place_batch(
                self.sharding, self.n_shards, tids, rows,
                self.route_col, self.attr_bounds, self.range_block)
        return tids, placement

    def commit_insert(self, tids: np.ndarray, placement: np.ndarray,
                      locals_of: Dict[int, Tuple[np.ndarray, np.ndarray]]
                      ) -> None:
        """Publish ownership: ``locals_of[s] = (sel, local_tids)`` per
        touched shard, with ``sel`` indexing into the batch."""
        with self._map_lock:
            for (sel, local) in locals_of.values():
                g = tids[sel]
                self._shard_of[g] = placement[sel]
                self._local_tid[g] = local

    # ------------------------------------------------------------------ #
    # delete
    # ------------------------------------------------------------------ #
    def begin_delete(self, tid_arr: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Validate and claim a delete batch; returns
        ``(owners, local_tids)`` aligned with ``tid_arr``.

        A dead or duplicated tid raises ``KeyError`` before any
        ownership row is cleared, so the fleet never ends up
        half-deleted - the same all-or-nothing contract as
        ``ShardedJanusAQP.delete_many``.
        """
        with self._map_lock:
            bad = (tid_arr < 0) | (tid_arr >= self._shard_of.shape[0])
            if not bad.any():
                owners = self._shard_of[tid_arr]
                bad = owners < 0
            if bad.any():
                raise KeyError(
                    f"tid {int(tid_arr[np.argmax(bad)])} is not live")
            if np.unique(tid_arr).size != tid_arr.size:
                raise KeyError("duplicate tid in delete batch")
            locals_ = self._local_tid[tid_arr]
            self._shard_of[tid_arr] = -1
        return owners, locals_

    # ------------------------------------------------------------------ #
    # probes
    # ------------------------------------------------------------------ #
    def owner(self, tid: int) -> int:
        """The shard currently holding a live global tid (locked)."""
        t = int(tid)
        with self._map_lock:
            if 0 <= t < self._shard_of.shape[0] and self._shard_of[t] >= 0:
                return int(self._shard_of[t])
        raise KeyError(f"tid {tid} is not live")

    def live(self, tid: int) -> bool:
        """Locked liveness probe."""
        t = int(tid)
        with self._map_lock:
            return bool(0 <= t < self._shard_of.shape[0]
                        and self._shard_of[t] >= 0)

    def live_tids(self) -> np.ndarray:
        """All live global tids, ascending (snapshot under the lock)."""
        with self._map_lock:
            return np.flatnonzero(self._shard_of[:self._next_tid] >= 0)

    @property
    def next_tid(self) -> int:
        with self._map_lock:
            return self._next_tid

    def state_arrays(self) -> Tuple[np.ndarray, np.ndarray, int]:
        """``(shard_of, local_tid, next_tid)`` copies for persistence."""
        with self._map_lock:
            n = self._next_tid
            return (self._shard_of[:n].copy(),
                    self._local_tid[:n].copy(), n)
