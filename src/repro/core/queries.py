"""Query model: rectangular predicates and aggregate queries.

A JanusAQP synopsis answers query templates of the form::

    SELECT agg(A) FROM D WHERE Rectangle(D.c1, ..., D.cd)

where ``agg`` is one of SUM/COUNT/AVG/MIN/MAX, ``A`` is the aggregation
attribute and ``c1..cd`` are predicate attributes (paper, Section 3.1).
This module defines the geometric predicate (:class:`Rectangle`), the query
object (:class:`Query`) and the answer envelope (:class:`QueryResult`),
which carries the estimate together with its confidence interval and the
two variance components of Section 4.4.1.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


class AggFunc(enum.Enum):
    """Aggregation functions supported by a partition-tree synopsis.

    VARIANCE and STDDEV are the composition the paper points at in
    Section 6.6 ("other aggregate functions such as STDDEV that can be
    composed using SUM and CNT"): they derive from the SUM, COUNT and
    sum-of-squares statistics every node already maintains.

    PERCENTILE, COUNT_DISTINCT and TOPK are the sketch-backed
    aggregates of :mod:`repro.sketch`: answered from mergeable
    per-engine sketches rather than the partition tree, with
    deterministic error bounds instead of normal confidence intervals.
    PERCENTILE and TOPK carry their parameter (the quantile fraction,
    the k) in :attr:`Query.param`.
    """

    SUM = "SUM"
    COUNT = "COUNT"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"
    VARIANCE = "VARIANCE"
    STDDEV = "STDDEV"
    PERCENTILE = "PERCENTILE"
    COUNT_DISTINCT = "COUNT_DISTINCT"
    TOPK = "TOPK"


#: Aggregates answered from mergeable sketches, not the partition tree.
SKETCH_AGGS = frozenset({AggFunc.PERCENTILE, AggFunc.COUNT_DISTINCT,
                         AggFunc.TOPK})


@dataclass(frozen=True)
class Rectangle:
    """A closed axis-aligned box ``[lo_j, hi_j]`` in d dimensions.

    Rectangles serve three roles in the system: query predicates,
    partitioning conditions of tree nodes, and witness regions returned by
    the max-variance oracle.  All intervals are closed on both sides, which
    matches the paper's conjunctions of ``>=, <=, =`` clauses (an equality
    clause is a degenerate interval).
    """

    lo: Tuple[float, ...]
    hi: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo and hi must have the same dimensionality")
        for a, b in zip(self.lo, self.hi):
            if a > b:
                raise ValueError(f"empty interval [{a}, {b}] in rectangle")

    @property
    def dim(self) -> int:
        """Number of dimensions the rectangle constrains."""
        return len(self.lo)

    @staticmethod
    def unbounded(dim: int) -> "Rectangle":
        """The whole space: every point is contained."""
        return Rectangle((-math.inf,) * dim, (math.inf,) * dim)

    @staticmethod
    def from_bounds(bounds: Sequence[Tuple[float, float]]) -> "Rectangle":
        """Build from a list of ``(lo, hi)`` pairs, one per dimension."""
        los = tuple(float(b[0]) for b in bounds)
        his = tuple(float(b[1]) for b in bounds)
        return Rectangle(los, his)

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when the point lies inside (intervals are closed)."""
        return all(a <= x <= b for a, x, b in zip(self.lo, point, self.hi))

    def contains_points(self, points) -> np.ndarray:
        """Vectorized membership test for an ``(n, d)`` coordinate batch.

        Returns a boolean mask of length n; row i is True when
        ``contains_point(points[i])`` would be.  The batch ingestion path
        routes whole arrays through the partition tree with this test.
        """
        pts = np.asarray(points, dtype=np.float64)
        lo = np.asarray(self.lo)
        hi = np.asarray(self.hi)
        return np.all((pts >= lo) & (pts <= hi), axis=1)

    def distances(self, points) -> np.ndarray:
        """Vectorized L1 point-to-rectangle distance (0 inside)."""
        pts = np.asarray(points, dtype=np.float64)
        lo = np.asarray(self.lo)
        hi = np.asarray(self.hi)
        below = np.clip(lo - pts, 0.0, None)
        above = np.clip(pts - hi, 0.0, None)
        # inf - inf at an unbounded edge yields NaN; an unbounded side
        # can never be violated, so its term is zero.
        below[np.isnan(below)] = 0.0
        above[np.isnan(above)] = 0.0
        return below.sum(axis=1) + above.sum(axis=1)

    def contains_rect(self, other: "Rectangle") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return all(a <= c and d <= b
                   for a, b, c, d in
                   zip(self.lo, self.hi, other.lo, other.hi))

    def intersects(self, other: "Rectangle") -> bool:
        """True when the rectangles share at least one point."""
        return all(a <= d and c <= b
                   for a, b, c, d in
                   zip(self.lo, self.hi, other.lo, other.hi))

    def intersection(self, other: "Rectangle") -> Optional["Rectangle"]:
        """The overlap box, or ``None`` when the rectangles are disjoint."""
        lo = tuple(max(a, c) for a, c in zip(self.lo, other.lo))
        hi = tuple(min(b, d) for b, d in zip(self.hi, other.hi))
        if any(a > b for a, b in zip(lo, hi)):
            return None
        return Rectangle(lo, hi)

    def split(self, dim: int, x: float) -> Tuple["Rectangle", "Rectangle"]:
        """Split into left (``coord <= x``) and right (``coord > x``) halves.

        The right half starts at ``nextafter(x, inf)`` so the two children
        are disjoint while their union covers the parent, preserving the
        partition-tree invariants of Section 2.3.1.
        """
        if not (self.lo[dim] <= x < self.hi[dim]):
            # x == hi would leave an empty right half; callers splitting
            # at a median guard this by falling back to the midpoint.
            raise ValueError(f"cannot split [{self.lo[dim]}, "
                             f"{self.hi[dim]}] at {x} on dim {dim}")
        left_hi = list(self.hi)
        left_hi[dim] = x
        right_lo = list(self.lo)
        right_lo[dim] = math.nextafter(x, math.inf)
        return (Rectangle(self.lo, tuple(left_hi)),
                Rectangle(tuple(right_lo), self.hi))

    def widths(self) -> Tuple[float, ...]:
        """Per-dimension side lengths ``hi_j - lo_j``."""
        return tuple(b - a for a, b in zip(self.lo, self.hi))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"[{a:g}, {b:g}]" for a, b in zip(self.lo, self.hi))
        return f"Rect({parts})"


@dataclass(frozen=True)
class Query:
    """An aggregate query with a rectangular predicate.

    ``predicate_attrs`` names the columns the rectangle constrains, in the
    same order as the rectangle's dimensions.  ``attr`` is the aggregation
    attribute; it is ignored for COUNT.

    ``param`` is the parameterized aggregates' argument: the quantile
    fraction ``p`` in ``[0, 1]`` for PERCENTILE, the integral ``k >= 1``
    for TOPK.  Every other aggregate must leave it ``None`` - validated
    here so a malformed query fails at construction, not mid-batch.
    """

    agg: AggFunc
    attr: str
    predicate_attrs: Tuple[str, ...]
    rect: Rectangle
    param: Optional[float] = None

    def __post_init__(self) -> None:
        if len(self.predicate_attrs) != self.rect.dim:
            raise ValueError("predicate_attrs must match rectangle dims")
        if self.agg is AggFunc.PERCENTILE:
            if self.param is None or not 0.0 <= float(self.param) <= 1.0:
                raise ValueError(
                    f"PERCENTILE needs a fraction in [0, 1], got "
                    f"{self.param!r}")
        elif self.agg is AggFunc.TOPK:
            if self.param is None or float(self.param) != \
                    int(float(self.param)) or int(float(self.param)) < 1:
                raise ValueError(
                    f"TOPK needs an integral k >= 1, got {self.param!r}")
        elif self.param is not None:
            raise ValueError(
                f"{self.agg.value} does not take a parameter")

    def with_agg(self, agg: AggFunc, attr: Optional[str] = None,
                 param: Optional[float] = None) -> "Query":
        """The same predicate with a different aggregation function/attr."""
        return Query(agg, attr if attr is not None else self.attr,
                     self.predicate_attrs, self.rect, param)


@dataclass
class QueryResult:
    """An estimate with its confidence interval.

    ``variance_catchup`` and ``variance_sample`` are the two error sources
    of Section 4.4.1 (nu_c from approximate node statistics, nu_s from the
    stratified leaf samples).  ``ci(z)`` combines them under the normal
    approximation.  ``exact`` is set when the synopsis can prove the answer
    has no approximation error (all touched nodes exact and fully covered).
    """

    estimate: float
    variance_catchup: float = 0.0
    variance_sample: float = 0.0
    exact: bool = False
    n_covered: int = 0
    n_partial: int = 0
    details: dict = field(default_factory=dict)  # codec-exempt: diagnostics-only, stays server-side

    @property
    def variance(self) -> float:
        """Total estimator variance ``nu_c + nu_s``."""
        return self.variance_catchup + self.variance_sample

    def ci(self, z: float = 1.96) -> Tuple[float, float]:
        """Confidence interval ``estimate +/- z * sqrt(nu_c + nu_s)``."""
        half = z * math.sqrt(max(self.variance, 0.0))
        return (self.estimate - half, self.estimate + half)

    def ci_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of :meth:`ci` at confidence level ``z``."""
        return z * math.sqrt(max(self.variance, 0.0))


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / |truth|`` with the 0/0 convention of Sec 6.1.2.

    When the ground truth is zero the error is 0 if the estimate is also
    zero and infinity otherwise; benchmark workloads filter near-empty
    queries the same way the paper does for multi-dimensional templates.
    """
    if truth == 0:
        return 0.0 if estimate == 0 else math.inf
    return abs(estimate - truth) / abs(truth)


def queries_relative_errors(estimates: Iterable[float],
                            truths: Iterable[float]) -> list:
    """Element-wise :func:`relative_error` over a workload."""
    return [relative_error(e, t) for e, t in zip(estimates, truths)]
