"""Deterministic 64-bit value hashing shared by every sketch.

All sketch randomness is *hash* randomness: a value's sampling level
(quantile sketch) and its HyperLogLog register/rank are pure functions
of the value's IEEE-754 bit pattern through the splitmix64 finalizer.
No RNG state exists anywhere in the package, so two sketches that saw
the same value multiset are byte-identical regardless of process,
shard or insertion order - the property every merge/identity gate in
``tests/test_sketch_properties.py`` rests on.
"""

from __future__ import annotations

import struct

__all__ = ["hash_float", "sample_level", "splitmix64"]

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """The splitmix64 finalizer: a high-quality 64-bit bijective mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def hash_float(value: float) -> int:
    """64-bit hash of a float's bit pattern (``-0.0`` folds onto ``0.0``).

    Hashing the bit pattern rather than ``hash(value)`` keeps the
    result stable across Python builds; folding the signed zero keeps
    ``0.0`` and ``-0.0`` - equal values - in one sketch cell.
    """
    if value == 0.0:
        value = 0.0
    (bits,) = struct.unpack("<Q", struct.pack("<d", value))
    return splitmix64(bits)


def sample_level(value: float) -> int:
    """Trailing-zero count of the value hash: P(level >= h) = 2**-h.

    The quantile sketch retains a value iff ``sample_level(value) >=
    height``, an expected ``2**-height`` subsample of the distinct
    values that is decided identically on every shard.
    """
    h = hash_float(value)
    if h == 0:
        return 64
    return (h & -h).bit_length() - 1
