"""Mergeable sketches backing the PERCENTILE/COUNT_DISTINCT/TOPK aggregates.

Every sketch in this package is a *canonical function of the live value
multiset* of one column: its state depends only on which values are
currently live (insert minus delete), never on arrival order, shard
placement or merge order.  That single design decision buys the three
contracts the sharded engine and the process fleet gate on:

* **merge commutativity/associativity** - merging per-shard sketches in
  any order yields byte-identical state, because the merged state is
  the sketch of the union multiset;
* **sharded == single-engine identity** - a fleet of shards over a
  disjoint row partition merges to exactly the single engine's sketch;
* **deletability** - a delete is an exact multiset decrement, so
  interleaved insert/delete streams stay consistent without tombstones.

Three sketches share one counted-value core (:mod:`.counted`):

* :class:`~repro.sketch.counted.QuantileSketch` - a KLL-style level
  sampler: a value is retained iff its 64-bit hash has at least
  ``height`` trailing zero bits, giving an expected ``2**-height``
  sample of the distinct values at weight ``2**height``.
* :class:`~repro.sketch.counted.DistinctSketch` - a refcounted
  HyperLogLog: exact multiplicities make it deletable, the estimate is
  the classic bias-corrected register harmonic mean.
* :class:`~repro.sketch.counted.HeavyHitters` - exact value counts with
  a saturation honesty flag mirroring ``index/topk.py``'s
  outer-approximation contract.

:mod:`.registry` maps aggregates to sketch kinds, serializes canonical
blobs and renders :class:`~repro.core.queries.QueryResult` answers that
are shared verbatim by the single engine, the sharded merge and the
fleet wire.
"""

from .counted import (CountedSketch, DistinctSketch, HeavyHitters,
                      QuantileSketch)
from .hashing import hash_float, sample_level, splitmix64
from .registry import (KIND_DISTINCT, KIND_HEAVY, KIND_QUANTILE,
                       SKETCH_KEY, merge_sketch_blobs, new_sketch,
                       sketch_answer, sketch_from_bytes, sketch_kind_for)

__all__ = [
    "CountedSketch", "DistinctSketch", "HeavyHitters", "QuantileSketch",
    "KIND_DISTINCT", "KIND_HEAVY", "KIND_QUANTILE", "SKETCH_KEY",
    "hash_float", "merge_sketch_blobs", "new_sketch", "sample_level",
    "sketch_answer", "sketch_from_bytes", "sketch_kind_for",
    "splitmix64",
]
