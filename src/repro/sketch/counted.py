"""Counted-value sketch core and the three concrete sketches.

One representation serves all three aggregates: a map from live value
to an integer count, plus the exact live-row total.  What differs per
sketch is *which* values are retained (:meth:`CountedSketch._keeps`),
how an estimate is rendered, and the accuracy contract:

* :class:`QuantileSketch` retains a value iff its hash's trailing-zero
  level reaches the configured ``height`` - an expected ``2**-height``
  subsample of the distinct values, each standing for ``2**height`` of
  them.  ``height=0`` degenerates to exact quantiles.
* :class:`DistinctSketch` retains everything with exact multiplicities
  (that is what makes HyperLogLog deletable) but *estimates* through
  the classic register harmonic mean, so accuracy scales as
  ``1.04/sqrt(m)`` with ``m = 2**bits`` registers - the bound the
  accuracy benchmark pins.
* :class:`HeavyHitters` retains exact counts and reports the top-k
  mass; crossing ``capacity`` distinct values clears the ``exact``
  honesty flag (the outer-approximation contract of
  :class:`repro.index.topk.TopK`), and - like that seed structure - the
  flag never comes back within one sketch's lifetime.

Serialization (:meth:`CountedSketch.to_bytes`) is canonical: entries
are emitted in ascending value order, so two sketches over the same
multiset serialize to identical bytes no matter how they were built.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, Iterable, List, Tuple

import numpy as np

from .hashing import hash_float, sample_level

__all__ = ["CountedSketch", "DistinctSketch", "HeavyHitters",
           "QuantileSketch"]

#: ``kind:u8 | version:u8 | param:u32 | n_total:i64 | n_entries:i64``
_BLOB_HEADER = struct.Struct("<BBIqq")
_BLOB_VERSION = 1


class CountedSketch:
    """Shared multiset core: value -> live count, plus the row total.

    Subclasses set :attr:`KIND` (the wire tag) and override
    :meth:`_keeps` to decide which values are materialized.  All state
    transitions are exact multiset arithmetic, so state is canonical in
    the live multiset by construction.
    """

    KIND = 0

    def __init__(self, param: int) -> None:
        self.param = int(param)
        self.counts: Dict[float, int] = {}
        self.n_total = 0

    # -------------------------------------------------------------- #
    # multiset maintenance
    # -------------------------------------------------------------- #
    def _keeps(self, value: float) -> bool:
        return True

    def insert_many(self, values: Iterable[float]) -> None:
        counts = self.counts
        for raw in values:
            value = float(raw)
            self.n_total += 1
            if self._keeps(value):
                counts[value] = counts.get(value, 0) + 1

    def delete_many(self, values: Iterable[float]) -> None:
        counts = self.counts
        for raw in values:
            value = float(raw)
            self.n_total -= 1
            if self.n_total < 0:
                raise ValueError("sketch delete underflow: more rows "
                                 "deleted than inserted")
            if self._keeps(value):
                left = counts.get(value, 0) - 1
                if left < 0:
                    raise ValueError(f"sketch delete of value {value} "
                                     f"that is not live")
                if left:
                    counts[value] = left
                else:
                    del counts[value]

    def merge_in(self, other: "CountedSketch") -> "CountedSketch":
        """Fold another sketch of the same kind/parameter into this one."""
        if type(other) is not type(self) or other.param != self.param:
            raise ValueError(
                f"cannot merge {type(other).__name__}(param="
                f"{getattr(other, 'param', '?')}) into "
                f"{type(self).__name__}(param={self.param})")
        self.n_total += other.n_total
        counts = self.counts
        for value, count in other.counts.items():
            combined = counts.get(value, 0) + count
            if combined:
                counts[value] = combined
            else:
                del counts[value]
        return self

    # -------------------------------------------------------------- #
    # canonical serialization
    # -------------------------------------------------------------- #
    def to_bytes(self) -> bytes:
        """Canonical blob: header + entries in ascending value order."""
        values = np.fromiter(self.counts.keys(), dtype=np.float64,
                             count=len(self.counts))
        counts = np.fromiter(self.counts.values(), dtype=np.int64,
                             count=len(self.counts))
        order = np.argsort(values, kind="stable")
        header = _BLOB_HEADER.pack(self.KIND, _BLOB_VERSION, self.param,
                                   self.n_total, len(self.counts))
        return header + values[order].tobytes() + \
            counts[order].tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CountedSketch":
        kind, version, param, n_total, n_entries = \
            _BLOB_HEADER.unpack_from(blob)
        if kind != cls.KIND:
            raise ValueError(f"blob kind {kind} is not a "
                             f"{cls.__name__} (kind {cls.KIND})")
        if version != _BLOB_VERSION:
            raise ValueError(f"unsupported sketch blob version {version}")
        sketch = cls(param)
        offset = _BLOB_HEADER.size
        values = np.frombuffer(blob, dtype="<f8", count=n_entries,
                               offset=offset)
        counts = np.frombuffer(blob, dtype="<i8", count=n_entries,
                               offset=offset + 8 * n_entries)
        sketch.counts = {float(v): int(c)
                         for v, c in zip(values, counts)}
        sketch.n_total = int(n_total)
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountedSketch):
            return NotImplemented
        return (type(self) is type(other) and self.param == other.param
                and self.n_total == other.n_total
                and self.counts == other.counts)

    def __len__(self) -> int:
        return len(self.counts)


class QuantileSketch(CountedSketch):
    """Hash-level value sampler answering rank/quantile queries.

    ``param`` is the sampling ``height``: a value is retained iff its
    hash has at least ``height`` trailing zero bits, so the retained
    distinct values are an expected ``2**-height`` sample decided
    identically everywhere.  Estimates are lower quantiles of the
    retained count-weighted sample; the DKW-style bound
    :meth:`rank_eps` is what the accuracy tests pin observed rank error
    against.
    """

    KIND = 1

    def _keeps(self, value: float) -> bool:
        return sample_level(value) >= self.param

    def sampled_rows(self) -> int:
        """Live rows whose value the sketch retained."""
        return sum(self.counts.values())

    @property
    def exact(self) -> bool:
        """True when every live row's value is retained."""
        return self.sampled_rows() == self.n_total

    def quantile(self, p: float) -> float:
        """Lower ``p``-quantile estimate (``p=0`` -> min, ``p=1`` -> max).

        The retained sample's weighted empirical CDF is inverted at
        ``p``: the smallest retained value whose cumulative count
        reaches ``ceil(p * W)`` of the retained mass ``W``.  On an
        exact sketch (``height=0``) this is precisely the lower
        quantile of the live multiset.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile fraction {p} outside [0, 1]")
        if not self.counts:
            return math.nan
        values = sorted(self.counts)
        weight = self.sampled_rows()
        target = max(1, math.ceil(p * weight))
        cum = 0
        for value in values:
            cum += self.counts[value]
            if cum >= target:
                return value
        return values[-1]

    def rank_eps(self, delta: float = 0.01) -> float:
        """DKW rank-error bound at confidence ``1 - delta``.

        With ``m`` retained distinct values the empirical CDF deviates
        from the true one by at most ``sqrt(ln(2/delta) / (2m))`` with
        probability ``1 - delta`` (exact for continuous data, where
        counts are 1; heavy duplication loosens it).  An exact sketch
        has zero rank error by construction.
        """
        if self.exact:
            return 0.0
        m = max(1, len(self.counts))
        return min(1.0, math.sqrt(math.log(2.0 / delta) / (2.0 * m)))


class DistinctSketch(CountedSketch):
    """Refcounted HyperLogLog: deletable, mergeable, classic estimate.

    ``param`` is the register-index bit width ``b`` (``m = 2**b``
    registers).  Exact multiplicities make deletion an exact decrement;
    the registers are re-derived from the live distinct values at
    estimate time, so the estimate after any insert/delete/merge
    history equals the estimate over the surviving multiset.
    """

    KIND = 2

    @property
    def n_registers(self) -> int:
        return 1 << self.param

    def _alpha(self) -> float:
        m = self.n_registers
        if m <= 16:
            return 0.673
        if m <= 32:
            return 0.697
        if m <= 64:
            return 0.709
        return 0.7213 / (1.0 + 1.079 / m)

    def _registers(self) -> np.ndarray:
        b = self.param
        width = 64 - b
        registers = np.zeros(self.n_registers, dtype=np.int64)
        for value in self.counts:
            h = hash_float(value)
            j = h >> width
            rest = h & ((1 << width) - 1)
            rho = width - rest.bit_length() + 1
            if rho > registers[j]:
                registers[j] = rho
        return registers

    def estimate(self) -> float:
        """Bias-corrected harmonic-mean estimate with linear counting."""
        if not self.counts:
            return 0.0
        m = self.n_registers
        registers = self._registers()
        raw = self._alpha() * m * m / float(
            np.sum(np.power(2.0, -registers.astype(np.float64))))
        zeros = int(np.count_nonzero(registers == 0))
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)
        return raw

    def rel_error_bound(self, z: float = 2.0) -> float:
        """``z`` standard errors of the HLL estimator: ``z*1.04/sqrt(m)``."""
        return z * 1.04 / math.sqrt(self.n_registers)


class HeavyHitters(CountedSketch):
    """Exact heavy-hitter counts with a saturation honesty flag.

    ``param`` is the distinct-value ``capacity`` of the honesty
    contract: while at most ``capacity`` distinct values are live the
    top-k answers are marked provably exact; beyond it the answers
    remain the true counts of the retained multiset but the ``exact``
    flag drops, the sketch-level analogue of the outer-approximation
    contract of :class:`repro.index.topk.TopK`.  Unlike that seed
    structure's sticky in-memory flag, the sketch flag is a pure
    function of the live multiset - it must be, or per-shard histories
    could disagree with the single engine's and break the
    sharded==single identity gate.
    """

    KIND = 3

    @property
    def exact(self) -> bool:
        return len(self.counts) <= self.param

    def top(self, k: int) -> List[Tuple[float, int]]:
        """The ``k`` most frequent live values, count desc then value asc."""
        if k < 1:
            raise ValueError(f"top-k needs k >= 1, got {k}")
        ranked = sorted(self.counts.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def top_mass(self, k: int) -> float:
        """Total live-row count captured by the top ``k`` values."""
        return float(sum(count for _value, count in self.top(k)))
