"""Aggregate <-> sketch wiring: kinds, blobs and answer rendering.

This module is the single place where the engine layers meet the
sketch package:

* :func:`sketch_kind_for` decides, per :class:`~repro.core.queries.
  AggFunc` member, which sketch kind (if any) backs it - the janus-lint
  merge-closure pass (JL304) requires every member to be dispatched
  here, so adding an aggregate without deciding its sketch story is a
  lint failure at this function's door.
* :func:`sketch_answer` renders a :class:`~repro.core.queries.
  QueryResult` from a sketch state.  The single engine, the sharded
  merge rule and the fleet coordinator all call this one function, so a
  single-contributor pass-through, a merged answer and a wire-decoded
  answer are byte-identical by construction.
* :func:`merge_sketch_blobs` folds canonical blobs (the
  ``details["sketch"]`` payload that also rides the fleet's sketch
  side-frame) back into one sketch.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..core.queries import AggFunc, Query, QueryResult
from .counted import (CountedSketch, DistinctSketch, HeavyHitters,
                      QuantileSketch)

__all__ = ["KIND_DISTINCT", "KIND_HEAVY", "KIND_QUANTILE", "SKETCH_KEY",
           "merge_sketch_blobs", "new_sketch", "sketch_answer",
           "sketch_empty_answer", "sketch_from_bytes",
           "sketch_kind_for"]

#: ``QueryResult.details`` key carrying a canonical sketch blob.
SKETCH_KEY = "sketch"

KIND_QUANTILE = QuantileSketch.KIND
KIND_DISTINCT = DistinctSketch.KIND
KIND_HEAVY = HeavyHitters.KIND

_SKETCH_CLASSES = {
    KIND_QUANTILE: QuantileSketch,
    KIND_DISTINCT: DistinctSketch,
    KIND_HEAVY: HeavyHitters,
}


def sketch_kind_for(agg: AggFunc) -> Optional[int]:
    """The sketch kind backing an aggregate; ``None`` for moment aggs.

    Every :class:`AggFunc` member must be dispatched explicitly - the
    JL304 merge-closure site - so growing the enum without a sketch
    maintenance decision fails janus-lint here.
    """
    if agg is AggFunc.PERCENTILE:
        return KIND_QUANTILE
    if agg is AggFunc.COUNT_DISTINCT:
        return KIND_DISTINCT
    if agg is AggFunc.TOPK:
        return KIND_HEAVY
    if agg in (AggFunc.SUM, AggFunc.COUNT, AggFunc.AVG, AggFunc.MIN,
               AggFunc.MAX, AggFunc.VARIANCE, AggFunc.STDDEV):
        return None
    raise ValueError(f"aggregate {agg} has no sketch dispatch rule")


def new_sketch(kind: int, *, sketch_height: int, hll_bits: int,
               topk_capacity: int) -> CountedSketch:
    """Construct an empty sketch of ``kind`` from the config knobs."""
    if kind == KIND_QUANTILE:
        return QuantileSketch(sketch_height)
    if kind == KIND_DISTINCT:
        return DistinctSketch(hll_bits)
    if kind == KIND_HEAVY:
        return HeavyHitters(topk_capacity)
    raise ValueError(f"unknown sketch kind {kind}")


def sketch_from_bytes(blob: bytes) -> CountedSketch:
    """Deserialize a canonical blob into the right sketch class."""
    if not blob:
        raise ValueError("empty sketch blob")
    kind = blob[0]
    cls = _SKETCH_CLASSES.get(kind)
    if cls is None:
        raise ValueError(f"unknown sketch kind {kind} in blob")
    return cls.from_bytes(blob)


def merge_sketch_blobs(blobs: Sequence[bytes]) -> CountedSketch:
    """Fold canonical blobs into one sketch (any order, same result)."""
    if not blobs:
        raise ValueError("no sketch blobs to merge")
    merged = sketch_from_bytes(blobs[0])
    for blob in blobs[1:]:
        merged.merge_in(sketch_from_bytes(blob))
    return merged


def sketch_answer(query: Query, sketch: CountedSketch) -> QueryResult:
    """Render the answer for ``query`` from one sketch state.

    The returned ``details`` carry the canonical blob (under
    :data:`SKETCH_KEY`) so the answer can be re-merged upstream, plus
    the ``ci: unavailable`` marker shared with VARIANCE/STDDEV -
    sketch answers have deterministic error bounds, not normal
    confidence intervals.
    """
    details = {"ci": "unavailable", SKETCH_KEY: sketch.to_bytes()}
    if query.agg is AggFunc.PERCENTILE:
        estimate = sketch.quantile(float(query.param))
        exact = sketch.exact and not math.isnan(estimate)
    elif query.agg is AggFunc.COUNT_DISTINCT:
        estimate = sketch.estimate()
        exact = sketch.n_total == 0
    elif query.agg is AggFunc.TOPK:
        estimate = sketch.top_mass(int(query.param))
        exact = sketch.exact
    else:
        raise ValueError(f"{query.agg} is not a sketch aggregate")
    return QueryResult(float(estimate), 0.0, 0.0, exact=exact,
                       n_covered=sketch.n_total, n_partial=0,
                       details=details)


def sketch_empty_answer(query: Query) -> QueryResult:
    """The merge-over-no-contributors answer (router pruned everyone).

    Mirrors what an engine with zero live rows answers from its empty
    sketch: an undefined (NaN, non-exact) percentile, and exact zeros
    for the counting sketches.
    """
    if query.agg is AggFunc.PERCENTILE:
        return QueryResult(math.nan, 0.0, 0.0, exact=False,
                           details={"ci": "unavailable"})
    return QueryResult(0.0, 0.0, 0.0, exact=True,
                       details={"ci": "unavailable"})
