"""Observability: unified metrics registry, request tracing, JSON logs.

Stdlib-only (no numpy) so the fleet workers and the broker can import
it without pulling the engine in.  Three modules:

``obs.metrics``
    Named counters, gauges and fixed-bucket latency histograms behind
    one :class:`MetricsRegistry`; every metric name lives in the
    canonical ``CATALOG`` table (enforced at runtime and by the
    janus-lint ``obs-metrics`` pass, JL601/JL602).  Prometheus text
    exposition via :func:`render_exposition`, validated by the
    :func:`parse_exposition` parser the tests and CI smoke job use.

``obs.trace``
    Span-based request tracing.  A :class:`Tracer` samples 1-in-N
    requests (deterministic counter, no RNG), minting a trace id at
    the HTTP front door or accepting one from an ``X-Janus-Trace``
    header; a :class:`TraceContext` collects spans across threads and
    across the fleet wire, and completed traces land in a bounded
    ring buffer served at ``/debug/traces``.

``obs.logs``
    :func:`log_event` - one structured JSON line per event (slow
    queries, fleet worker restarts).
"""

from .logs import log_event
from .metrics import (CATALOG, Counter, Gauge, Histogram, MetricsRegistry,
                      parse_exposition, render_exposition)
from .trace import (TraceContext, Tracer, decode_spans, encode_spans,
                    maybe_span)

__all__ = [
    "CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_exposition",
    "render_exposition",
    "TraceContext",
    "Tracer",
    "decode_spans",
    "encode_spans",
    "maybe_span",
    "log_event",
]
