"""Central metrics registry with Prometheus text exposition.

Every metric the project emits is declared once in :data:`CATALOG`
(name -> (type, help)); creating an instrument with a name outside the
table raises, and the janus-lint ``obs-metrics`` pass (JL601/JL602)
statically enforces that no module outside this file invents metric
names.  That single table is what keeps ``/metrics`` one consistent
``janus_*`` namespace instead of the ad-hoc counter dicts it replaced.

Three instrument kinds:

``Counter``
    Monotone ``inc()``.  Also supports ``set()`` for scrape-time
    mirrors of values owned elsewhere (e.g. the service registry
    mirroring fleet per-worker totals so the historical
    ``janus_service_worker_*`` series keep their names).

``Gauge``
    ``set()`` / ``inc()``, last-write-wins.

``Histogram``
    Fixed cumulative buckets plus a bounded window of raw
    observations, so ``percentile(0.99)`` is *exact* over the last
    ``window`` samples instead of bucket-interpolated - the property
    the stall-gate benchmark relies on.

A registry hands out **the same instrument** for repeated
``(name, labels)`` registrations, which is what lets a restarted fleet
worker keep accumulating into the counters of the shard slot it
replaced.  All instruments are thread-safe.

:func:`render_exposition` merges any number of registries into one
Prometheus text page (HELP/TYPE comments, escaped label values,
``_bucket``/``_sum``/``_count`` histogram series) and
:func:`parse_exposition` validates that format back into families -
the round trip is the exposition-correctness test and the CI smoke
check.
"""

from __future__ import annotations

import re
import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_exposition",
    "parse_exposition",
]

# --------------------------------------------------------------------- #
# canonical metric table
# --------------------------------------------------------------------- #
#: The one canonical table of metric names.  janus-lint JL601 rejects
#: any registry call whose name is not a key here; JL602 rejects
#: ``janus_*`` string literals outside this module that are not keys
#: here.  Keep it sorted by family prefix.
CATALOG = {
    # ---- service layer (owned by AQPServer; janus_service_worker_*,
    # janus_service_routed_* etc. are scrape-time mirrors of engine /
    # fleet values so the series names predating the registry keep
    # working) ----
    "janus_service_uptime_seconds":
        ("gauge", "Seconds since the server started."),
    "janus_service_requests_total":
        ("counter", "HTTP requests by route."),
    "janus_service_bad_requests_total":
        ("counter", "Rejected requests (4xx)."),
    "janus_service_request_seconds":
        ("histogram", "End-to-end HTTP request latency."),
    "janus_service_slow_queries_total":
        ("counter", "Requests over the --slow-query-ms threshold."),
    "janus_service_traces_total":
        ("counter", "Completed traces recorded in the ring buffer."),
    "janus_service_explain_requests_total":
        ("counter", "Query/SQL requests with \"explain\": true."),
    "janus_service_engine_rows":
        ("gauge", "Live rows in the engine at scrape time."),
    "janus_service_engine_data_epoch":
        ("counter", "Engine data epoch at scrape time."),
    "janus_service_batches_total":
        ("counter", "Micro-batches flushed."),
    "janus_service_batched_queries_total":
        ("counter", "Queries admitted through the micro-batcher."),
    "janus_service_batch_max_size":
        ("gauge", "Largest micro-batch flushed so far."),
    "janus_service_batch_flush_full_total":
        ("counter", "Flushes triggered by a full batch."),
    "janus_service_batch_flush_linger_total":
        ("counter", "Flushes triggered by the linger timer."),
    "janus_service_batch_isolated_total":
        ("counter", "Queries re-run solo after a poisoned batch."),
    "janus_service_cache_hits_total":
        ("counter", "Result-cache hits."),
    "janus_service_cache_misses_total":
        ("counter", "Result-cache misses."),
    "janus_service_cache_stores_total":
        ("counter", "Result-cache stores."),
    "janus_service_cache_rejected_stores_total":
        ("counter", "Stores rejected by the epoch-change guard."),
    "janus_service_cache_evictions_total":
        ("counter", "Result-cache LRU evictions."),
    "janus_service_routed_queries_total":
        ("counter", "Queries answered by a routed shard subset."),
    "janus_service_broadcast_queries_total":
        ("counter", "Queries that fell back to full fan-out."),
    "janus_service_pruned_shard_queries_total":
        ("counter", "Per-shard executions skipped by routing."),
    "janus_service_mean_shards_touched":
        ("gauge", "Mean shards touched per routed query."),
    "janus_service_shards_touched_total":
        ("counter", "Routed queries by number of shards touched."),
    "janus_service_workers":
        ("gauge", "Fleet worker processes configured."),
    "janus_service_workers_alive":
        ("gauge", "Fleet worker processes currently alive."),
    "janus_service_worker_requests_total":
        ("counter", "Broker requests per fleet worker."),
    "janus_service_worker_bytes_sent_total":
        ("counter", "Bytes sent to each fleet worker."),
    "janus_service_worker_bytes_received_total":
        ("counter", "Bytes received from each fleet worker."),
    "janus_service_worker_restarts_total":
        ("counter", "Crash-recovery restarts per fleet worker."),
    "janus_service_worker_p50_seconds":
        ("gauge", "Median broker round-trip per fleet worker."),
    # ---- engine stalls (owned by JanusAQP / ShardedJanusAQP) ----
    "janus_engine_reoptimize_seconds":
        ("histogram", "Full reoptimize duration (per shard)."),
    "janus_engine_reopt_blocking_seconds":
        ("histogram", "Lock-held portion of reoptimize."),
    "janus_engine_ingest_stall_seconds":
        ("histogram", "Per-batch insert/delete time under the "
                      "engine lock."),
    "janus_engine_repartition_seconds":
        ("histogram", "Partial repartition duration."),
    "janus_engine_rebalance_seconds":
        ("histogram", "Cross-shard rebalance duration."),
    # ---- routing (owned by RoutingStats) ----
    "janus_routing_queries_total":
        ("counter", "Queries that went through the shard planner."),
    "janus_routing_routed_queries_total":
        ("counter", "Planner queries answered by a shard subset."),
    "janus_routing_broadcast_queries_total":
        ("counter", "Planner queries broadcast to all live shards."),
    "janus_routing_pruned_shard_queries_total":
        ("counter", "Per-shard executions the planner skipped."),
    "janus_routing_shards_touched_total":
        ("counter", "Planner queries by number of shards touched."),
    # ---- fleet transport (owned by FleetCoordinator) ----
    "janus_fleet_worker_requests_total":
        ("counter", "Broker requests per fleet worker."),
    "janus_fleet_worker_bytes_sent_total":
        ("counter", "Bytes sent to each fleet worker."),
    "janus_fleet_worker_bytes_received_total":
        ("counter", "Bytes received from each fleet worker."),
    "janus_fleet_worker_restarts_total":
        ("counter", "Crash-recovery restarts per fleet worker."),
    "janus_fleet_worker_request_seconds":
        ("histogram", "Broker round-trip latency per fleet worker."),
}

#: Default histogram buckets (seconds): 100us .. 5s, the range every
#: latency in this stack lives in.
DEFAULT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                   0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: Raw observations kept per histogram child for exact percentiles.
DEFAULT_WINDOW = 1024

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _format_value(value: float) -> str:
    """Render integral values without a trailing ``.0``.

    Keeps historical series like ``janus_service_batches_total 1``
    byte-identical to the pre-registry hand-rolled exposition.
    """
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _labels_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def _render_labels(items: Iterable[Tuple[str, str]]) -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in items]
    return "{" + ",".join(parts) + "}" if parts else ""


# --------------------------------------------------------------------- #
# instruments
# --------------------------------------------------------------------- #
class Counter:
    """Monotone counter; ``set`` exists for scrape-time mirrors."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(Counter):
    """Last-write-wins instantaneous value."""

    __slots__ = ()


class Histogram:
    """Fixed cumulative buckets + bounded raw window.

    ``observe`` is O(n_buckets); ``percentile`` sorts the raw window
    (bounded at ``window`` samples) so p50/p95/p99 readouts are exact
    over recent history rather than bucket-interpolated.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count",
                 "_window")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                 window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0
        self._window: deque = deque(maxlen=window)

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self._sum += v
            self._count += 1
            self._window.append(v)
            for i, bound in enumerate(self.buckets):
                if v <= bound:
                    self._counts[i] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Exact quantile (nearest-rank) over the raw window; 0.0 when
        empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        with self._lock:
            window = sorted(self._window)
        if not window:
            return 0.0
        rank = min(len(window) - 1, int(q * len(window)))
        return window[rank]

    def snapshot(self) -> Tuple[List[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count


class _Family:
    """One metric name: type, help and per-labelset children."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: Dict[Tuple[Tuple[str, str], ...], object] = {}


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class MetricsRegistry:
    """Instrument factory keyed by ``(name, labels)``.

    Names must be :data:`CATALOG` keys with the catalogued type;
    re-registering an existing ``(name, labels)`` pair returns the
    same instrument, so components can look instruments up on the hot
    path without holding references and restarted fleet workers keep
    their predecessor's totals.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- factories ----------------------------------------------------- #
    def counter(self, name: str, **labels: str) -> Counter:
        return self._child(name, "counter", labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._child(name, "gauge", labels, Gauge)

    def histogram(self, name: str,
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  window: int = DEFAULT_WINDOW,
                  **labels: str) -> Histogram:
        return self._child(name, "histogram", labels,
                           lambda: Histogram(buckets, window))

    def _child(self, name, kind, labels, factory):
        entry = CATALOG.get(name)
        if entry is None:
            raise ValueError(
                f"metric {name!r} is not in the obs.metrics CATALOG; "
                "register it there (janus-lint JL601)")
        if entry[0] != kind:
            raise ValueError(
                f"metric {name!r} is catalogued as {entry[0]!r}, "
                f"not {kind!r}")
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"bad label name: {key!r}")
        key = _labels_key({k: str(v) for k, v in labels.items()})
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, entry[1])
                self._families[name] = family
            child = family.children.get(key)
            if child is None:
                child = factory()
                family.children[key] = child
            return child

    # -- exposition ---------------------------------------------------- #
    def collect(self) -> List[_Family]:
        """Snapshot of families (shared children; values are read
        thread-safely at render time)."""
        with self._lock:
            return list(self._families.values())

    def render(self) -> str:
        return render_exposition(self)


def render_exposition(*registries: MetricsRegistry) -> str:
    """Merge registries into one Prometheus text page.

    Families are sorted by name; HELP and TYPE comments are emitted
    once per family; a family appearing in several registries (e.g.
    the same histogram name with different label sets) has its
    children merged.
    """
    merged: Dict[str, _Family] = {}
    for registry in registries:
        for family in registry.collect():
            have = merged.get(family.name)
            if have is None:
                have = _Family(family.name, family.kind, family.help)
                merged[family.name] = have
            have.children.update(family.children)
    lines: List[str] = []
    for name in sorted(merged):
        family = merged[name]
        lines.append(f"# HELP {name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {name} {family.kind}")
        for key in sorted(family.children):
            child = family.children[key]
            if family.kind == "histogram":
                counts, total, count = child.snapshot()
                for bound, cumulative in zip(child.buckets, counts):
                    labelled = _render_labels(
                        list(key) + [("le", _format_value(bound))])
                    lines.append(
                        f"{name}_bucket{labelled} {cumulative}")
                labelled = _render_labels(list(key) + [("le", "+Inf")])
                lines.append(f"{name}_bucket{labelled} {count}")
                suffix = _render_labels(key)
                lines.append(f"{name}_sum{suffix} "
                             f"{_format_value(total)}")
                lines.append(f"{name}_count{suffix} {count}")
            else:
                lines.append(f"{name}{_render_labels(key)} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# exposition parser (tests + CI smoke)
# --------------------------------------------------------------------- #
_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\Z")
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"'
    r"\s*(?:,|\Z)")


def _unescape_label(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_PAIR_RE.match(text, pos)
        if match is None:
            raise ValueError(f"malformed label block: {text!r}")
        labels[match.group("key")] = _unescape_label(match.group("val"))
        pos = match.end()
    return labels


def _base_family(name: str, types: Dict[str, str]) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def parse_exposition(text: str) -> Dict[str, dict]:
    """Parse + validate a Prometheus text page.

    Returns ``{family: {"type", "help", "samples": [(name, labels,
    value), ...]}}``.  Raises :class:`ValueError` on malformed lines,
    samples with no preceding ``# TYPE``, or HELP/TYPE after the
    family's first sample - the checks the exposition-correctness
    satellite hangs off.
    """
    families: Dict[str, dict] = {}
    types: Dict[str, str] = {}
    sampled: set = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: bad comment {line!r}")
            _, kind, name = parts[:3]
            rest = parts[3] if len(parts) > 3 else ""
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad name {name!r}")
            if name in sampled:
                raise ValueError(
                    f"line {lineno}: {kind} for {name!r} after its "
                    "samples")
            entry = families.setdefault(
                name, {"type": None, "help": None, "samples": []})
            if kind == "TYPE":
                if rest not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    raise ValueError(
                        f"line {lineno}: bad type {rest!r}")
                entry["type"] = rest
                types[name] = rest
            else:
                entry["help"] = rest
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: bad sample {line!r}")
        name = match.group("name")
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad value {match.group('value')!r}")
        labels = _parse_labels(match.group("labels") or "")
        base = _base_family(name, types)
        if base not in families or families[base]["type"] is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no # TYPE")
        sampled.add(base)
        families[base]["samples"].append((name, labels, value))
    return families
