"""Span-based request tracing with deterministic sampling.

A :class:`Tracer` lives on the server.  For each request it either
returns ``None`` (untraced - the common case, so the hot path pays
one lock-guarded counter increment) or a :class:`TraceContext` that
collects spans as the request crosses the batcher, the cache, the
routing planner, the per-shard executors and - over the binary broker
protocol - the fleet workers.  Sampling is a deterministic 1-in-N
counter rather than an RNG draw, so it is reproducible and JL501-safe
(no ``np.random`` outside engine seeding).

Span model: plain dicts, ``{"id", "parent", "name", "start_us",
"dur_us", "tags"}``.  Ids are integers unique within a trace; the
coordinator allocates small ids, fleet workers allocate from a
pid-derived base so remote spans cannot collide with local ones.
``parent`` is ``None`` for roots; the concurrency tests assert every
completed trace forms a connected forest (no span points at a missing
id).

Cross-thread fan-out cannot use the thread-local implicit parent
stack, so :meth:`TraceContext.span` takes an explicit ``parent=``;
fleet workers return their spans as a JSON sidecar on the reply frame
(:func:`encode_spans` / :func:`decode_spans`) which the coordinator
grafts under its ``shard_execute`` span.

Completed traces (immutable dicts) go into a bounded ring buffer;
``/debug/traces`` serves a snapshot taken under the same lock, so a
reader can never observe a half-built trace.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from collections import deque

__all__ = ["Tracer", "TraceContext", "maybe_span", "encode_spans",
           "decode_spans"]

_UNSET = object()


def encode_spans(spans: List[dict]) -> bytes:
    """Compact JSON codec for the reply-frame span sidecar."""
    return json.dumps(spans, separators=(",", ":")).encode("utf-8")


def decode_spans(blob: bytes) -> List[dict]:
    spans = json.loads(bytes(blob).decode("utf-8"))
    if not isinstance(spans, list):
        raise ValueError("span sidecar must be a JSON list")
    return spans


class TraceContext:
    """Collects the spans of one request; thread-safe.

    Within one thread, ``with ctx.span("name"):`` nests automatically
    via a thread-local parent stack.  Fan-out code passes ``parent=``
    explicitly because child work runs on executor threads.  ``note``
    stashes non-timing facts (routing subsets, live shards) that the
    EXPLAIN report reads back.
    """

    def __init__(self, trace_id: int,
                 tracer: Optional["Tracer"] = None) -> None:
        self.trace_id = int(trace_id)
        self._tracer = tracer
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._spans: List[dict] = []
        self._notes: Dict[str, object] = {}
        self._next_id = 0
        self._tls = threading.local()
        self._finished = False

    # -- span plumbing ------------------------------------------------- #
    def _alloc_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _implicit_parent(self) -> Optional[int]:
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, parent: object = _UNSET,
             **tags: object) -> Iterator[dict]:
        """Time a block; yields the span dict (``span["id"]`` is the
        parent id for cross-thread children; callers may add tags)."""
        if parent is _UNSET:
            parent = self._implicit_parent()
        span = {"id": self._alloc_id(),
                "parent": parent,
                "name": name,
                "start_us": int((time.perf_counter() - self._t0) * 1e6),
                "dur_us": 0,
                "tags": dict(tags)}
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append(span["id"])
        start = time.perf_counter()
        try:
            yield span
        finally:
            span["dur_us"] = int((time.perf_counter() - start) * 1e6)
            stack.pop()
            with self._lock:
                self._spans.append(span)

    def add_span(self, name: str, dur_us: int,
                 parent: object = _UNSET, **tags: object) -> int:
        """Record an already-measured duration (e.g. executor queue
        wait) as a span; returns its id."""
        if parent is _UNSET:
            parent = self._implicit_parent()
        span = {"id": self._alloc_id(),
                "parent": parent,
                "name": name,
                "start_us": int((time.perf_counter() - self._t0) * 1e6),
                "dur_us": int(dur_us),
                "tags": dict(tags)}
        with self._lock:
            self._spans.append(span)
        return span["id"]

    def add_foreign_spans(self, spans: List[dict],
                          default_parent: Optional[int]) -> None:
        """Graft spans decoded from a worker reply.  Remote span ids
        come from a pid-derived base (see ``service.worker``) so they
        cannot collide with local ids; a remote span without a parent
        is attached under ``default_parent``."""
        cleaned = []
        for span in spans:
            span = dict(span)
            if span.get("parent") in (None, 0):
                span["parent"] = default_parent
            cleaned.append(span)
        with self._lock:
            self._spans.extend(cleaned)

    # -- annotations --------------------------------------------------- #
    def note(self, key: str, value: object) -> None:
        with self._lock:
            self._notes[key] = value

    @property
    def notes(self) -> Dict[str, object]:
        with self._lock:
            return dict(self._notes)

    # -- completion ---------------------------------------------------- #
    def finish(self, **tags: object) -> dict:
        """Freeze into an immutable trace dict and record it with the
        owning tracer (if any).  Idempotent-hostile on purpose: a
        double finish is a bug."""
        with self._lock:
            if self._finished:
                raise RuntimeError("trace finished twice")
            self._finished = True
            spans = [dict(s) for s in self._spans]
        trace = {
            "trace_id": f"{self.trace_id:x}",
            "duration_us": int((time.perf_counter() - self._t0) * 1e6),
            "n_spans": len(spans),
            "spans": spans,
        }
        trace.update(tags)
        if self._tracer is not None:
            self._tracer.record(trace)
        return trace


class Tracer:
    """Deterministic 1-in-N sampler + bounded completed-trace ring.

    ``sample_every=0`` disables sampling entirely; forced traces
    (``"explain": true`` or an ``X-Janus-Trace`` header) still run.
    The ring holds fully-built trace dicts only - ``record`` appends
    one finished object under the lock and ``snapshot`` copies the
    deque under the same lock, so ``/debug/traces`` can never tear
    mid-write.
    """

    def __init__(self, sample_every: int = 64,
                 capacity: int = 256) -> None:
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sample_every = int(sample_every)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._seen = 0
        self._minted = 0
        self._traces: deque = deque(maxlen=capacity)

    def _mint_id(self) -> int:
        # pid-salted so ids from concurrently tested servers differ;
        # no RNG (JL501) and no wall clock (reproducible).
        self._minted += 1
        return ((os.getpid() & 0xFFFFFF) << 40) | self._minted

    def sample(self, force: bool = False,
               trace_id: Optional[int] = None
               ) -> Optional[TraceContext]:
        """Return a context for this request, or ``None`` to skip it."""
        with self._lock:
            # Count first, then test: the first sampled request is the
            # N-th, not the 1st, so short-lived servers (tests, smoke
            # runs) keep an untraced hot path unless they force.
            self._seen += 1
            take = force or (self.sample_every > 0
                             and self._seen % self.sample_every == 0)
            if not take:
                return None
            tid = trace_id if trace_id else self._mint_id()
        return TraceContext(tid, tracer=self)

    def record(self, trace: dict) -> None:
        with self._lock:
            self._traces.append(trace)

    def snapshot(self) -> List[dict]:
        with self._lock:
            return list(self._traces)


@contextmanager
def maybe_span(ctx: Optional[TraceContext], name: str,
               parent: object = _UNSET,
               **tags: object) -> Iterator[Optional[dict]]:
    """``ctx.span`` when tracing, a free no-op when ``ctx`` is None -
    lets engine code carry instrumentation with zero overhead on the
    untraced hot path."""
    if ctx is None:
        yield None
        return
    with ctx.span(name, parent=parent, **tags) as span:
        yield span
