"""Structured one-line JSON event logs.

One event per line, compact separators, flushed immediately - the
format machines grep and humans can still read.  Used for the
slow-query log and fleet worker-restart records; tests capture the
stream with ``io.StringIO``.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO, Optional

__all__ = ["log_event"]


def log_event(stream: Optional[IO[str]], event: str,
              **fields: object) -> None:
    """Write ``{"ts": ..., "event": ..., **fields}`` as one line.

    ``stream=None`` falls back to ``sys.stderr`` (resolved at call
    time so test monkeypatching works).  Non-JSON values are
    stringified rather than raised on - a log line must never take
    the serving path down.
    """
    record = {"ts": round(time.time(), 6), "event": str(event)}
    record.update(fields)
    out = stream if stream is not None else sys.stderr
    print(json.dumps(record, separators=(",", ":"), default=str,
                     sort_keys=False), file=out, flush=True)
