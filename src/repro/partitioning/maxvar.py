"""Max-variance oracle M(R): the core primitive of all partitioners.

Section 5.1 reduces partition optimization to: given a rectangle R, find
(approximately) the rectangular query inside R whose estimate has the
largest sample-estimate variance nu_s.  Appendix D.1 gives per-aggregate
constructions, which we reproduce:

* **COUNT** - the max-variance query holds exactly half the bucket's
  samples; its variance has the closed form
  ``(N_R/m_R)^2 * (m_R c - c^2) / m_R`` with ``c = m_R // 2`` - no
  geometry needed.
* **SUM** - split R into two rectangles of ``m_R/2`` samples at the
  median of one coordinate and return the half with the larger sum of
  squared values: a 1/4-approximation of the optimum.
* **AVG** - among rectangles holding ``delta*m`` samples, one maximizing
  the sum of squared values is a 1/4-approximation (Lemma D.1).  We scan
  two candidate families, both genuine rectangles inside R (so M always
  *under*-estimates V, which is what the binary-search partitioner's
  correctness argument needs): (a) maximal index cells fully inside R
  with <= delta*m samples - the analogue of the paper's canonical-
  rectangle structure T; (b) contiguous windows of delta*m samples along
  each coordinate axis, computed with prefix sums.

The module exposes both an index-backed oracle (:class:`MaxVarOracle`,
used by the k-d partitioner and the re-partitioning triggers) and pure
prefix-sum kernels over sorted 1-D arrays (used by the 1-D binary-search
and DP partitioners, where every candidate bucket is a contiguous run).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.queries import AggFunc, Rectangle
from ..index.range_index import RangeIndex


@dataclass
class MaxVarResult:
    """Approximate max variance in a rectangle, with a witness query."""

    variance: float
    witness: Optional[Rectangle] = None

    @property
    def error(self) -> float:
        """Confidence-interval length proxy: sqrt of the variance."""
        return math.sqrt(max(self.variance, 0.0))


# ---------------------------------------------------------------------- #
# variance kernels (Appendix C / Section 5.1 formulas)
# ---------------------------------------------------------------------- #
def sum_query_variance(pop_ratio: float, m_bucket: int, q_sum: float,
                       q_sumsq: float) -> float:
    """nu_s of a SUM query with per-query sample stats inside a bucket.

    ``pop_ratio`` is N/m: population rows per sample; the bucket population
    is estimated as ``pop_ratio * m_bucket`` during partitioning.
    """
    if m_bucket <= 0:
        return 0.0
    n_bucket = pop_ratio * m_bucket
    val = m_bucket * q_sumsq - q_sum * q_sum
    return max(0.0, (n_bucket * n_bucket) / (m_bucket ** 3) * val)


def count_query_variance(pop_ratio: float, m_bucket: int) -> float:
    """Closed-form max nu_s of a COUNT query inside a bucket."""
    if m_bucket <= 1:
        return 0.0
    c = m_bucket // 2
    n_bucket = pop_ratio * m_bucket
    val = m_bucket * c - c * c
    return (n_bucket * n_bucket) / (m_bucket ** 3) * val


def avg_query_variance(m_bucket: int, q_count: int, q_sum: float,
                       q_sumsq: float) -> float:
    """nu_s of an AVG query with per-query sample stats inside a bucket."""
    if m_bucket <= 0 or q_count <= 0:
        return 0.0
    val = m_bucket * q_sumsq - q_sum * q_sum
    return max(0.0, val / (m_bucket * q_count * q_count))


# ---------------------------------------------------------------------- #
# prefix-sum kernels for contiguous 1-D buckets
# ---------------------------------------------------------------------- #
class PrefixStats:
    """Prefix sums over samples sorted by their 1-D key.

    ``bucket [i, j)`` statistics and max-variance estimates in O(1)/O(j-i).
    """

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        self.m = values.shape[0]
        self.p1 = np.concatenate([[0.0], np.cumsum(values)])
        self.p2 = np.concatenate([[0.0], np.cumsum(values * values)])

    def stats(self, i: int, j: int) -> Tuple[int, float, float]:
        return j - i, float(self.p1[j] - self.p1[i]), \
            float(self.p2[j] - self.p2[i])

    # -- oracles ------------------------------------------------------- #
    def max_var_count(self, i: int, j: int, pop_ratio: float) -> float:
        return count_query_variance(pop_ratio, j - i)

    def max_var_sum(self, i: int, j: int, pop_ratio: float) -> float:
        """Median half-split oracle (1/4-approximation)."""
        m_b = j - i
        if m_b <= 1:
            return 0.0
        mid = i + m_b // 2
        best = 0.0
        for lo, hi in ((i, mid), (mid, j)):
            _, s, s2 = self.stats(lo, hi)
            best = max(best, sum_query_variance(pop_ratio, m_b, s, s2))
        return best

    def max_var_avg(self, i: int, j: int, window: int) -> float:
        """Best delta*m-sample window inside the bucket (vectorized)."""
        m_b = j - i
        if m_b <= 1:
            return 0.0
        w = max(1, min(window, m_b))
        seg1 = self.p1[i + w:j + 1] - self.p1[i:j + 1 - w]
        seg2 = self.p2[i + w:j + 1] - self.p2[i:j + 1 - w]
        vals = m_b * seg2 - seg1 * seg1
        best = float(vals.max()) if vals.size else 0.0
        return max(0.0, best / (m_b * w * w))

    def max_var(self, i: int, j: int, agg: AggFunc, pop_ratio: float,
                window: int) -> float:
        if agg is AggFunc.COUNT:
            return self.max_var_count(i, j, pop_ratio)
        if agg is AggFunc.SUM:
            return self.max_var_sum(i, j, pop_ratio)
        if agg is AggFunc.AVG:
            return self.max_var_avg(i, j, window)
        raise ValueError(f"no max-variance oracle for {agg}")


# ---------------------------------------------------------------------- #
# index-backed oracle for d >= 1
# ---------------------------------------------------------------------- #
class MaxVarOracle:
    """M(R) over a :class:`RangeIndex` of the pooled sample.

    ``pop_ratio`` (N/m) converts sample counts to population estimates;
    ``delta`` is the minimum-support fraction for AVG queries (Section
    5.3.1, default 5%).

    For SUM and COUNT the rows-based entry point
    (:meth:`max_variance_rows`) never touches the index, so ``index``
    may be ``None`` when the caller supplies member blocks itself (the
    k-d partitioner over a frozen snapshot); AVG still needs the index
    for its canonical-cell candidate family.
    """

    def __init__(self, index: Optional[RangeIndex], agg: AggFunc,
                 pop_ratio: float, delta: float = 0.05) -> None:
        if agg not in (AggFunc.SUM, AggFunc.COUNT, AggFunc.AVG):
            raise ValueError(f"no max-variance oracle for {agg}")
        if index is None and agg is AggFunc.AVG:
            raise ValueError("the AVG oracle needs a sample index for "
                             "its canonical-cell candidates")
        self.index = index
        self.agg = agg
        self.pop_ratio = pop_ratio
        self.delta = delta

    def _window(self) -> int:
        return max(4, int(self.delta * max(len(self.index), 1)))

    def max_variance(self, rect: Rectangle) -> MaxVarResult:
        if self.agg is AggFunc.COUNT:
            m_b = self.index.count(rect)
            return MaxVarResult(count_query_variance(self.pop_ratio, m_b),
                                witness=rect)
        coords, values, tids = self.index.report(rect)
        return self._max_var_rows(rect, coords, values, tids)

    def max_variance_rows(self, rect: Rectangle, coords: np.ndarray,
                          values: np.ndarray,
                          tids: np.ndarray) -> MaxVarResult:
        """M(R) over a pre-materialized member block of ``rect``.

        The vectorized k-d partitioner maintains each candidate leaf's
        member rows as index arrays into one flat sample matrix; this
        entry point lets it probe the oracle without a per-split
        ``report`` scan.  The rows must be exactly the live points
        inside ``rect``.
        """
        if self.agg is AggFunc.COUNT:
            return MaxVarResult(count_query_variance(self.pop_ratio,
                                                     values.shape[0]),
                                witness=rect)
        return self._max_var_rows(rect, coords, values, tids)

    def _max_var_rows(self, rect: Rectangle, coords: np.ndarray,
                      values: np.ndarray, tids: np.ndarray) -> MaxVarResult:
        # Canonical tid order first: ``report`` order is an
        # implementation detail (tree traversal vs storage order), and
        # with duplicate coordinates the stable by-coordinate argsorts
        # below would otherwise tie-break differently.  After this sort
        # the oracle is a pure function of the point *set*.  Member
        # blocks from the k-d partitioner (and most storage-order
        # reports) arrive already ascending, so probe the cheap O(n)
        # check before paying the sort and two gathers.
        if tids.shape[0] > 1 and np.any(tids[1:] < tids[:-1]):
            order = np.argsort(tids, kind="stable")
            coords, values = coords[order], values[order]
        if self.agg is AggFunc.SUM:
            return self._max_var_sum(rect, coords, values)
        return self._max_var_avg(rect, coords, values)

    def _max_var_sum(self, rect: Rectangle, coords: np.ndarray,
                     values: np.ndarray) -> MaxVarResult:
        m_b = values.shape[0]
        if m_b <= 1:
            return MaxVarResult(0.0, witness=rect)
        widths = coords.max(axis=0) - coords.min(axis=0)
        dim = int(np.argmax(widths))
        order = np.argsort(coords[:, dim], kind="stable")
        vals = values[order]
        mid = m_b // 2
        best_var, best_witness = -1.0, rect
        cut = float(coords[order[mid - 1], dim])
        halves = ((0, mid), (mid, m_b))
        for idx, (lo, hi) in enumerate(halves):
            seg = vals[lo:hi]
            var = sum_query_variance(self.pop_ratio, m_b,
                                     float(seg.sum()),
                                     float((seg * seg).sum()))
            if var > best_var:
                best_var = var
                bounds = list(zip(rect.lo, rect.hi))
                if idx == 0:
                    bounds[dim] = (rect.lo[dim], cut)
                else:
                    bounds[dim] = (cut, rect.hi[dim])
                best_witness = Rectangle.from_bounds(bounds)
        return MaxVarResult(best_var, witness=best_witness)

    def _max_var_avg(self, rect: Rectangle, coords: np.ndarray,
                     values: np.ndarray) -> MaxVarResult:
        m_b = values.shape[0]
        if m_b <= 1:
            return MaxVarResult(0.0, witness=rect)
        w = min(self._window(), m_b)
        best_var, best_witness = 0.0, rect
        # Candidate family (a): canonical index cells with <= w samples.
        for cell, count, _, sumsq in self.index.small_cells(rect, w):
            if count <= 0:
                continue
            # Lemma D.1 bound uses sum-of-squares; the (sum)^2 term only
            # lowers the variance, so recompute exactly from cell stats.
            c, s, s2 = self.index.range_stats(
                rect.intersection(cell) or cell)
            var = avg_query_variance(m_b, c, s, s2)
            if var > best_var:
                best_var = var
                best_witness = cell
        # Candidate family (b): axis-aligned windows of w samples.
        for dim in range(coords.shape[1]):
            order = np.argsort(coords[:, dim], kind="stable")
            vals = values[order]
            p1 = np.concatenate([[0.0], np.cumsum(vals)])
            p2 = np.concatenate([[0.0], np.cumsum(vals * vals)])
            seg1 = p1[w:] - p1[:-w]
            seg2 = p2[w:] - p2[:-w]
            scores = m_b * seg2 - seg1 * seg1
            if scores.size == 0:
                continue
            s_idx = int(np.argmax(scores))
            var = max(0.0, float(scores[s_idx]) / (m_b * w * w))
            if var > best_var:
                best_var = var
                lo_c = float(coords[order[s_idx], dim])
                hi_c = float(coords[order[s_idx + w - 1], dim])
                bounds = list(zip(rect.lo, rect.hi))
                bounds[dim] = (lo_c, hi_c)
                best_witness = Rectangle.from_bounds(bounds)
        return MaxVarResult(best_var, witness=best_witness)
