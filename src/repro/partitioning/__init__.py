"""Partition optimization: max-variance oracle and four partitioners."""

from .spec import PartitionNode, tree_from_intervals
from .maxvar import MaxVarOracle, MaxVarResult, PrefixStats, \
    avg_query_variance, count_query_variance, sum_query_variance
from .dynamic1d import DynamicOneDimIndex
from .onedim import OneDimPartitioner, OneDimResult
from .dp import DPPartitioner
from .kdtree import KDTreePartitioner, KDTreeResult
from .equidepth import equidepth_boundaries, equidepth_tree

__all__ = ["PartitionNode", "tree_from_intervals", "MaxVarOracle",
           "MaxVarResult", "PrefixStats", "avg_query_variance",
           "count_query_variance", "sum_query_variance",
           "DynamicOneDimIndex", "OneDimPartitioner", "OneDimResult",
           "DPPartitioner",
           "KDTreePartitioner", "KDTreeResult", "equidepth_boundaries",
           "equidepth_tree"]
