"""Greedy k-d-tree partitioner for any dimension (Sections 5.3.2 / D.3).

Builds a partition tree top-down: a max-heap keyed by the (approximate)
max variance M(R) of each current leaf repeatedly extracts the worst leaf
and splits it at the median of the next dimension in a pre-defined
ordering, until there are k leaves.  The oracle is the index-backed
:class:`~repro.partitioning.maxvar.MaxVarOracle` over the pooled sample.

The build itself runs on the flat sample matrix: the whole pool is
materialized once (``all_items``) in canonical tid order, and every
candidate leaf carries its member rows as an index array into that
matrix.  Splitting a node is one median + boolean-mask pass over the
members, and the oracle is probed through
:meth:`~repro.partitioning.maxvar.MaxVarOracle.max_variance_rows` with
the member block - so the build issues **zero** per-split ``report``
scans against the index.  ``Rectangle.split`` makes children disjoint
(the cut plane belongs to the left child only), so one boolean mask and
its complement reproduce geometric membership per child exactly.

:class:`ReferenceKDTreePartitioner` keeps the original
report-per-split implementation; it produces identical trees (the
equivalence suite pins this) and exists as the correctness reference
and the old-path baseline for ``benchmarks/bench_reinit.py``.

The paper shows this yields a near-optimal partitioning with respect to
the optimal tree using the same splitting criterion - factor 2*sqrt(k)
for SUM/COUNT and 2*log^{(d+1)/2} m for AVG.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.queries import AggFunc, Rectangle
from ..index.range_index import RangeIndex
from .maxvar import MaxVarOracle
from .spec import PartitionNode


@dataclass
class KDTreeResult:
    tree: PartitionNode
    max_error: float


class KDTreePartitioner:
    """Median-split greedy partitioner driven by the max-variance oracle."""

    def __init__(self, agg: AggFunc = AggFunc.SUM, delta: float = 0.05,
                 min_leaf_samples: int = 4) -> None:
        self.agg = agg
        self.delta = delta
        self.min_leaf_samples = min_leaf_samples

    def partition(self, index: RangeIndex, k: int,
                  n_population: Optional[int] = None,
                  root_rect: Optional[Rectangle] = None) -> KDTreeResult:
        """Build a k-leaf partition tree over the samples in ``index``."""
        coords, values, tids = index.all_items()
        return self.partition_rows(coords, values, tids, k,
                                   n_population=n_population,
                                   root_rect=root_rect, index=index)

    def partition_rows(self, coords: np.ndarray, values: np.ndarray,
                       tids: np.ndarray, k: int,
                       n_population: Optional[int] = None,
                       root_rect: Optional[Rectangle] = None,
                       index: Optional[RangeIndex] = None) -> KDTreeResult:
        """Build a k-leaf tree directly over a flat sample matrix.

        For SUM/COUNT the whole build is index-free, so a frozen
        re-initialization snapshot can be partitioned without
        constructing a throwaway geometric index first; AVG needs
        ``index`` for the oracle's canonical-cell candidate family.
        """
        m = coords.shape[0]
        if m == 0:
            raise ValueError("cannot partition an empty sample index")
        n_population = n_population if n_population is not None else m
        oracle = MaxVarOracle(index if self.agg is AggFunc.AVG else None,
                              self.agg, n_population / m,
                              delta=self.delta)
        dim = coords.shape[1]
        root_rect = root_rect or Rectangle.unbounded(dim)
        # Canonical tid order: member blocks handed to the oracle are
        # then bit-identical to a tid-sorted report, whatever the
        # index's storage order.
        order = np.argsort(tids, kind="stable")
        coords, values, tids = coords[order], values[order], tids[order]

        def probe(rect: Rectangle, members: np.ndarray) -> float:
            return oracle.max_variance_rows(
                rect, coords[members], values[members],
                tids[members]).variance

        root = PartitionNode(root_rect)
        root_members = np.flatnonzero(root_rect.contains_points(coords))
        members_of: Dict[int, np.ndarray] = {id(root): root_members}
        counter = itertools.count()          # heap tie-breaker
        heap: List[Tuple[float, int, PartitionNode, int, np.ndarray]] = []
        heapq.heappush(heap, (-probe(root_rect, root_members),
                              next(counter), root, 0, root_members))
        n_leaves = 1
        while n_leaves < k and heap:
            neg_var, _, node, depth, members = heapq.heappop(heap)
            split = self._split_members(dim, node, depth, coords,
                                        members)
            if split is None:
                continue                     # unsplittable leaf: skip it
            (left, left_members), (right, right_members) = split
            node.children = [left, right]
            n_leaves += 1
            for child, child_members in ((left, left_members),
                                         (right, right_members)):
                members_of[id(child)] = child_members
                if child_members.size >= 2 * self.min_leaf_samples:
                    heapq.heappush(heap, (-probe(child.rect, child_members),
                                          next(counter), child,
                                          depth + 1, child_members))
        max_err = 0.0
        for leaf in root.leaves():
            mm = members_of[id(leaf)]
            max_err = max(max_err, oracle.max_variance_rows(
                leaf.rect, coords[mm], values[mm], tids[mm]).error)
        return KDTreeResult(root, max_err)

    # ------------------------------------------------------------------ #
    def _split_members(self, n_dims: int, node: PartitionNode, depth: int,
                       coords: np.ndarray, members: np.ndarray
                       ) -> Optional[Tuple[Tuple[PartitionNode, np.ndarray],
                                           Tuple[PartitionNode, np.ndarray]]]:
        """Median split on the round-robin dimension (with fallbacks)."""
        m_b = members.size
        if m_b < 2 * self.min_leaf_samples:
            return None
        sub = coords[members]
        dims = list(range(n_dims))
        start = depth % n_dims
        ordered = dims[start:] + dims[:start]
        for dim in ordered:
            col = sub[:, dim]
            lo, hi = float(col.min()), float(col.max())
            if hi <= lo:
                continue
            median = float(np.median(col))
            if median >= hi:                 # duplicate-heavy column
                median = (lo + hi) / 2.0
            left_rect, right_rect = node.rect.split(dim, median)
            left_sel = col <= median
            n_left = int(left_sel.sum())
            if n_left == 0 or n_left == m_b:
                continue
            # rect.split puts the cut plane in the left child only (the
            # right child starts at nextafter(median)), so the boolean
            # complement is exactly geometric membership per child.
            return ((PartitionNode(left_rect), members[left_sel]),
                    (PartitionNode(right_rect), members[~left_sel]))
        return None


class ReferenceKDTreePartitioner:
    """The original report-per-split build, kept as the reference.

    Functionally identical to :class:`KDTreePartitioner` (the
    equivalence suite pins matching cuts and leaf rectangles); every
    heap step pays one ``index.report``/``index.count`` scan per node
    probed, which is the old-path cost that
    ``benchmarks/bench_reinit.py`` baselines against.
    """

    def __init__(self, agg: AggFunc = AggFunc.SUM, delta: float = 0.05,
                 min_leaf_samples: int = 4) -> None:
        self.agg = agg
        self.delta = delta
        self.min_leaf_samples = min_leaf_samples

    def partition(self, index, k: int,
                  n_population: Optional[int] = None,
                  root_rect: Optional[Rectangle] = None) -> KDTreeResult:
        m = len(index)
        if m == 0:
            raise ValueError("cannot partition an empty sample index")
        n_population = n_population if n_population is not None else m
        oracle = MaxVarOracle(index, self.agg, n_population / m,
                              delta=self.delta)
        root_rect = root_rect or Rectangle.unbounded(index.dim)
        root = PartitionNode(root_rect)
        counter = itertools.count()
        heap: List[Tuple[float, int, PartitionNode, int]] = []
        var0 = oracle.max_variance(root_rect).variance
        heapq.heappush(heap, (-var0, next(counter), root, 0))
        n_leaves = 1
        while n_leaves < k and heap:
            neg_var, _, node, depth = heapq.heappop(heap)
            split = self._split_node(index, node, depth)
            if split is None:
                continue
            left, right = split
            node.children = [left, right]
            n_leaves += 1
            for child in (left, right):
                if index.count(child.rect) >= 2 * self.min_leaf_samples:
                    var = oracle.max_variance(child.rect).variance
                    heapq.heappush(heap, (-var, next(counter), child,
                                          depth + 1))
        max_err = 0.0
        for leaf in root.leaves():
            max_err = max(max_err,
                          oracle.max_variance(leaf.rect).error)
        return KDTreeResult(root, max_err)

    # ------------------------------------------------------------------ #
    def _split_node(self, index, node: PartitionNode,
                    depth: int) -> Optional[Tuple[PartitionNode,
                                                  PartitionNode]]:
        coords, _, _ = index.report(node.rect)
        m_b = coords.shape[0]
        if m_b < 2 * self.min_leaf_samples:
            return None
        dims = list(range(index.dim))
        start = depth % index.dim
        ordered = dims[start:] + dims[:start]
        for dim in ordered:
            col = coords[:, dim]
            lo, hi = float(col.min()), float(col.max())
            if hi <= lo:
                continue
            median = float(np.median(col))
            if median >= hi:                 # duplicate-heavy column
                median = (lo + hi) / 2.0
            left_rect, right_rect = node.rect.split(dim, median)
            n_left = int((col <= median).sum())
            if n_left == 0 or n_left == m_b:
                continue
            return (PartitionNode(left_rect), PartitionNode(right_rect))
        return None
