"""Greedy k-d-tree partitioner for any dimension (Sections 5.3.2 / D.3).

Builds a partition tree top-down: a max-heap keyed by the (approximate)
max variance M(R) of each current leaf repeatedly extracts the worst leaf
and splits it at the median of the next dimension in a pre-defined
ordering, until there are k leaves.  The oracle is the index-backed
:class:`~repro.partitioning.maxvar.MaxVarOracle` over the pooled sample.

The paper shows this yields a near-optimal partitioning with respect to
the optimal tree using the same splitting criterion - factor 2*sqrt(k)
for SUM/COUNT and 2*log^{(d+1)/2} m for AVG.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.queries import AggFunc, Rectangle
from ..index.range_index import RangeIndex
from .maxvar import MaxVarOracle
from .spec import PartitionNode


@dataclass
class KDTreeResult:
    tree: PartitionNode
    max_error: float


class KDTreePartitioner:
    """Median-split greedy partitioner driven by the max-variance oracle."""

    def __init__(self, agg: AggFunc = AggFunc.SUM, delta: float = 0.05,
                 min_leaf_samples: int = 4) -> None:
        self.agg = agg
        self.delta = delta
        self.min_leaf_samples = min_leaf_samples

    def partition(self, index: RangeIndex, k: int,
                  n_population: Optional[int] = None,
                  root_rect: Optional[Rectangle] = None) -> KDTreeResult:
        """Build a k-leaf partition tree over the samples in ``index``."""
        m = len(index)
        if m == 0:
            raise ValueError("cannot partition an empty sample index")
        n_population = n_population if n_population is not None else m
        oracle = MaxVarOracle(index, self.agg, n_population / m,
                              delta=self.delta)
        root_rect = root_rect or Rectangle.unbounded(index.dim)
        root = PartitionNode(root_rect)
        counter = itertools.count()          # heap tie-breaker
        heap: List[Tuple[float, int, PartitionNode, int]] = []
        var0 = oracle.max_variance(root_rect).variance
        heapq.heappush(heap, (-var0, next(counter), root, 0))
        n_leaves = 1
        while n_leaves < k and heap:
            neg_var, _, node, depth = heapq.heappop(heap)
            split = self._split_node(index, node, depth)
            if split is None:
                continue                     # unsplittable leaf: skip it
            left, right = split
            node.children = [left, right]
            n_leaves += 1
            for child in (left, right):
                if index.count(child.rect) >= 2 * self.min_leaf_samples:
                    var = oracle.max_variance(child.rect).variance
                    heapq.heappush(heap, (-var, next(counter), child,
                                          depth + 1))
        max_err = 0.0
        for leaf in root.leaves():
            max_err = max(max_err,
                          oracle.max_variance(leaf.rect).error)
        return KDTreeResult(root, max_err)

    # ------------------------------------------------------------------ #
    def _split_node(self, index: RangeIndex, node: PartitionNode,
                    depth: int) -> Optional[Tuple[PartitionNode,
                                                  PartitionNode]]:
        """Median split on the round-robin dimension (with fallbacks)."""
        coords, _, _ = index.report(node.rect)
        m_b = coords.shape[0]
        if m_b < 2 * self.min_leaf_samples:
            return None
        dims = list(range(index.dim))
        start = depth % index.dim
        ordered = dims[start:] + dims[:start]
        for dim in ordered:
            col = coords[:, dim]
            lo, hi = float(col.min()), float(col.max())
            if hi <= lo:
                continue
            median = float(np.median(col))
            if median >= hi:                 # duplicate-heavy column
                median = (lo + hi) / 2.0
            left_rect, right_rect = node.rect.split(dim, median)
            n_left = int((col <= median).sum())
            if n_left == 0 or n_left == m_b:
                continue
            return (PartitionNode(left_rect), PartitionNode(right_rect))
        return None
