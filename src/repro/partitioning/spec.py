"""Partition specifications: the hierarchical rectangle trees partitioners emit.

A partitioner's job (Section 5) is to produce a hierarchy of rectangles
satisfying the partition-tree invariants of Section 2.3.1: every child is
a subset of its parent, siblings are disjoint, and siblings union to the
parent.  The DPT/SPT then attach statistics and samples to this skeleton.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.queries import Rectangle


@dataclass
class PartitionNode:
    """One node of a partition hierarchy (leaf when ``children`` is empty)."""

    rect: Rectangle
    children: List["PartitionNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> Iterator["PartitionNode"]:
        if self.is_leaf:
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def walk(self) -> Iterator["PartitionNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def n_leaves(self) -> int:
        return sum(1 for _ in self.leaves())

    def height(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(child.height() for child in self.children)

    def validate(self) -> None:
        """Check the partition-tree invariants; raises on violation."""
        for node in self.walk():
            if node.is_leaf:
                continue
            for child in node.children:
                if not node.rect.contains_rect(child.rect):
                    raise AssertionError("child escapes its parent")
            for i, a in enumerate(node.children):
                for b in node.children[i + 1:]:
                    if a.rect.intersects(b.rect):
                        raise AssertionError("siblings overlap")


def tree_from_intervals(boundaries: Sequence[float],
                        full: Rectangle) -> PartitionNode:
    """A balanced binary hierarchy over consecutive 1-D leaf intervals.

    ``boundaries`` are the interior cut points ``c_1 < ... < c_{k-1}``:
    leaf i covers ``(c_{i-1}, c_i]`` (with the full rectangle's ends at the
    extremes).  Matches the paper's "128 leaf nodes in a balanced binary
    tree" experimental setting.
    """
    import math
    # Duplicate cuts and cuts at (or beyond) the domain edges would
    # create empty leaf intervals.
    cuts = sorted({c for c in boundaries if full.lo[0] <= c < full.hi[0]})
    leaves: List[PartitionNode] = []
    lo = full.lo[0]
    current_lo = lo
    for cut in cuts:
        leaves.append(PartitionNode(
            Rectangle((current_lo,), (cut,))))
        current_lo = math.nextafter(cut, math.inf)
    leaves.append(PartitionNode(Rectangle((current_lo,), (full.hi[0],))))
    return _balanced_merge(leaves)


def _balanced_merge(leaves: List[PartitionNode]) -> PartitionNode:
    """Pairwise-merge contiguous runs into a balanced binary hierarchy."""
    if not leaves:
        raise ValueError("cannot build a tree with no leaves")
    level = list(leaves)
    while len(level) > 1:
        merged: List[PartitionNode] = []
        for i in range(0, len(level) - 1, 2):
            a, b = level[i], level[i + 1]
            lo = tuple(min(x, y) for x, y in zip(a.rect.lo, b.rect.lo))
            hi = tuple(max(x, y) for x, y in zip(a.rect.hi, b.rect.hi))
            merged.append(PartitionNode(Rectangle(lo, hi), [a, b]))
        if len(level) % 2 == 1:
            merged.append(level[-1])
        level = merged
    return level[0]
