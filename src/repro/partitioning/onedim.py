"""Binary-search 1-D partitioner (paper Sections 5.2 and D.2).

The algorithm searches a discretized ladder of error values
``E = { rho^t : L/sqrt(2) <= rho^t <= N*U }`` for the smallest error ``e``
such that the samples can be covered by ``k`` buckets whose worst query
error (sqrt of the max variance) is at most ``e``.  Feasibility for one
``e`` is checked greedily: grow each bucket maximally via binary search on
the sample order, using the prefix-sum oracle of
:mod:`repro.partitioning.maxvar`.

With ``gamma = 4`` for SUM/AVG the result is within ``2*rho*sqrt(2)``
(SUM) / ``2*rho`` (AVG) of the optimal max error; the running time is
``O(k log m log log N)`` oracle calls - the paper's Table 3 compares this
against the PASS dynamic program.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.queries import AggFunc, Rectangle
from .maxvar import PrefixStats
from .spec import PartitionNode, tree_from_intervals


@dataclass
class OneDimResult:
    """A 1-D partitioning: interior cut keys and bucket index boundaries."""

    boundaries: List[float]          # k-1 interior cut coordinates
    bucket_index_bounds: List[int]   # k+1 sample-rank boundaries
    max_error: float                 # sqrt(max bucket variance) achieved
    tree: PartitionNode


class OneDimPartitioner:
    """Greedy-feasibility binary search over the error ladder."""

    def __init__(self, agg: AggFunc = AggFunc.SUM, rho: float = 2.0,
                 delta: float = 0.05) -> None:
        if rho <= 1.0:
            raise ValueError("rho must be > 1")
        self.agg = agg
        self.rho = rho
        self.delta = delta

    # ------------------------------------------------------------------ #
    def partition(self, keys: np.ndarray, values: np.ndarray, k: int,
                  n_population: Optional[int] = None,
                  domain: Optional[Tuple[float, float]] = None
                  ) -> OneDimResult:
        """Partition samples ``(key, value)`` into ``k`` buckets.

        ``n_population`` is |D| (defaults to the sample count, i.e. the
        SPT case where samples are the data); ``domain`` is the full key
        range the root rectangle must cover.
        """
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        order = np.argsort(keys, kind="stable")
        keys, values = keys[order], values[order]
        m = keys.shape[0]
        if m == 0:
            raise ValueError("cannot partition an empty sample")
        k = max(1, min(k, m))
        n_population = n_population if n_population is not None else m
        pop_ratio = n_population / m
        prefix = PrefixStats(values)
        window = max(4, int(self.delta * m))

        def bucket_error(i: int, j: int) -> float:
            var = prefix.max_var(i, j, self.agg, pop_ratio, window)
            return math.sqrt(max(var, 0.0))

        hi_err = bucket_error(0, m)          # one bucket: the worst case
        if hi_err <= 0.0:
            bounds = self._equal_count_bounds(m, k)
        else:
            bounds = self._search_ladder(m, k, hi_err, bucket_error)
        cuts = self._cuts_from_bounds(keys, bounds)
        max_err = max((bucket_error(bounds[i], bounds[i + 1])
                       for i in range(len(bounds) - 1)), default=0.0)
        lo_d, hi_d = (domain if domain is not None
                      else (float(keys[0]), float(keys[-1])))
        tree = tree_from_intervals(cuts, Rectangle((lo_d,), (hi_d,)))
        return OneDimResult(cuts, bounds, max_err, tree)

    # ------------------------------------------------------------------ #
    def _search_ladder(self, m: int, k: int, hi_err: float,
                       bucket_error) -> List[int]:
        """Binary search over exponents t of rho^t within the error range."""
        # Lower end of the ladder: a tiny fraction of the 1-bucket error
        # stands in for the paper's L/sqrt(2) bound (both are poly bounds
        # used only to bound the ladder length).
        t_hi = math.ceil(math.log(hi_err, self.rho))
        t_lo = t_hi - 64                       # ~ rho^-64 relative floor
        best_bounds: Optional[List[int]] = None
        lo, hi = t_lo, t_hi
        while lo <= hi:
            mid = (lo + hi) // 2
            e = self.rho ** mid
            bounds = self._feasible(m, k, e, bucket_error)
            if bounds is not None:
                best_bounds = bounds
                hi = mid - 1
            else:
                lo = mid + 1
        if best_bounds is None:
            best_bounds = self._feasible(m, k, self.rho ** (t_hi + 1),
                                         bucket_error)
        if best_bounds is None:                 # paranoid fallback
            best_bounds = self._equal_count_bounds(m, k)
        return best_bounds

    @staticmethod
    def _equal_count_bounds(m: int, k: int) -> List[int]:
        return [round(i * m / k) for i in range(k + 1)]

    def _feasible(self, m: int, k: int, e: float,
                  bucket_error) -> Optional[List[int]]:
        """Greedy maximal buckets with error <= e; None if > k needed."""
        bounds = [0]
        start = 0
        for _ in range(k):
            if start >= m:
                break
            # Binary search the largest j with error([start, j)) <= e.
            lo, hi = start + 1, m
            best = start + 1                   # single sample: error 0
            while lo <= hi:
                mid = (lo + hi) // 2
                if bucket_error(start, mid) <= e:
                    best = mid
                    lo = mid + 1
                else:
                    hi = mid - 1
            bounds.append(best)
            start = best
        if bounds[-1] < m:
            return None
        # Feasible with fewer than k buckets: pad by splitting the largest.
        while len(bounds) - 1 < k:
            sizes = [bounds[i + 1] - bounds[i] for i in range(len(bounds) - 1)]
            widest = int(np.argmax(sizes))
            if sizes[widest] < 2:
                break
            mid = bounds[widest] + sizes[widest] // 2
            bounds.insert(widest + 1, mid)
        return bounds

    @staticmethod
    def _cuts_from_bounds(keys: np.ndarray, bounds: List[int]) -> List[float]:
        """Interior cut coordinates at the right edge of each bucket."""
        cuts = []
        for b in bounds[1:-1]:
            cuts.append(float(keys[b - 1]))
        # Deduplicate cuts caused by tied keys.
        out: List[float] = []
        for c in cuts:
            if not out or c > out[-1]:
                out.append(c)
        return out
