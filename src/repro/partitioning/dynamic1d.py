"""Treap-backed dynamic 1-D partitioning index (paper Section D.2).

The paper's 1-D setting maintains the samples in "a simple dynamic search
binary tree of space O(m)" updated in O(log m) per insert/delete, over
which the binary-search partitioner runs in O(k M log m log log N) - no
re-sorting at re-partition time.  :class:`DynamicOneDimIndex` is that
structure: a treap with subtree (count, sum, sum-of-squares) aggregates.

* **COUNT** re-partitioning uses the closed-form optimum ("the optimum
  partition in 1D consists of equal size buckets"): k-quantile order
  statistics straight off the treap, O(k log m).
* **SUM** re-partitioning runs the binary search over the error ladder
  with the half-split oracle evaluated through treap rank/range queries,
  never materializing the sample array.
* **AVG**'s window oracle needs contiguous prefix scans, so it
  materializes the ordered samples once per re-partition (O(m)) and
  reuses the array machinery - still far below the DP's O(m^2).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..core.queries import AggFunc, Rectangle
from ..index.treap import Treap
from .maxvar import count_query_variance, sum_query_variance
from .onedim import OneDimPartitioner, OneDimResult
from .spec import tree_from_intervals


class DynamicOneDimIndex:
    """Incrementally-maintained samples supporting fast re-partitioning."""

    def __init__(self, agg: AggFunc = AggFunc.SUM, rho: float = 2.0,
                 delta: float = 0.05, seed: int = 0) -> None:
        if rho <= 1.0:
            raise ValueError("rho must be > 1")
        self.agg = agg
        self.rho = rho
        self.delta = delta
        self._treap = Treap(seed=seed)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._treap)

    def insert(self, tid: int, key: float, value: float) -> None:
        self._treap.insert(key, tid, value)

    def delete(self, tid: int, key: float) -> bool:
        return self._treap.delete(key, tid)

    # ------------------------------------------------------------------ #
    # bucket statistics via rank arithmetic
    # ------------------------------------------------------------------ #
    def _bucket_stats(self, i: int, j: int) -> Tuple[int, float, float]:
        """(count, sum, sumsq) of samples with ranks in [i, j)."""
        if j <= i:
            return 0, 0.0, 0.0
        lo_key, _, _ = self._treap.kth(i)
        hi_key, _, _ = self._treap.kth(j - 1)
        c, s, s2 = self._treap.range_stats(lo_key, hi_key)
        # ties at the boundaries can pull in neighbours; correct by rank
        if c != j - i:
            # fall back to exact scan over the rank range (rare: ties)
            vals = [self._treap.kth(r)[2] for r in range(i, j)]
            s = float(sum(vals))
            s2 = float(sum(v * v for v in vals))
            c = j - i
        return c, s, s2

    def _bucket_error(self, i: int, j: int, pop_ratio: float) -> float:
        m_b = j - i
        if m_b <= 1:
            return 0.0
        if self.agg is AggFunc.COUNT:
            return math.sqrt(count_query_variance(pop_ratio, m_b))
        # SUM: median half-split oracle via rank arithmetic
        mid = i + m_b // 2
        best = 0.0
        for lo, hi in ((i, mid), (mid, j)):
            _, s, s2 = self._bucket_stats(lo, hi)
            best = max(best, sum_query_variance(pop_ratio, m_b, s, s2))
        return math.sqrt(best)

    # ------------------------------------------------------------------ #
    def partition(self, k: int, n_population: Optional[int] = None,
                  domain: Optional[Tuple[float, float]] = None
                  ) -> OneDimResult:
        """Re-partition the current samples into k buckets."""
        m = len(self._treap)
        if m == 0:
            raise ValueError("cannot partition an empty sample")
        k = max(1, min(k, m))
        n_population = n_population if n_population is not None else m
        if domain is None:
            domain = (self._treap.kth(0)[0], self._treap.kth(m - 1)[0])
        if self.agg is AggFunc.COUNT:
            return self._partition_count(k, domain)
        if self.agg is AggFunc.AVG:
            return self._partition_materialized(k, n_population, domain)
        return self._partition_sum(k, n_population, domain)

    def _partition_count(self, k: int,
                         domain: Tuple[float, float]) -> OneDimResult:
        """Equal-size buckets via order statistics: O(k log m)."""
        m = len(self._treap)
        bounds = [round(i * m / k) for i in range(k + 1)]
        cuts: List[float] = []
        for b in bounds[1:-1]:
            key = self._treap.kth(b - 1)[0]
            if not cuts or key > cuts[-1]:
                cuts.append(key)
        pop_ratio = 1.0
        max_err = max((self._bucket_error(bounds[i], bounds[i + 1],
                                          pop_ratio)
                       for i in range(len(bounds) - 1)), default=0.0)
        tree = tree_from_intervals(cuts, Rectangle((domain[0],),
                                                   (domain[1],)))
        return OneDimResult(cuts, bounds, max_err, tree)

    def _partition_sum(self, k: int, n_population: int,
                       domain: Tuple[float, float]) -> OneDimResult:
        """Binary search over the error ladder, oracle on the treap."""
        m = len(self._treap)
        pop_ratio = n_population / m

        def bucket_error(i: int, j: int) -> float:
            return self._bucket_error(i, j, pop_ratio)

        hi_err = bucket_error(0, m)
        if hi_err <= 0:
            bounds = [round(i * m / k) for i in range(k + 1)]
        else:
            # reuse the array partitioner's ladder search via its public
            # helper mechanics (identical algorithm, different oracle)
            helper = OneDimPartitioner(self.agg, rho=self.rho,
                                       delta=self.delta)
            bounds = helper._search_ladder(m, k, hi_err, bucket_error)
        cuts: List[float] = []
        for b in bounds[1:-1]:
            key = self._treap.kth(b - 1)[0]
            if not cuts or key > cuts[-1]:
                cuts.append(key)
        max_err = max((bucket_error(bounds[i], bounds[i + 1])
                       for i in range(len(bounds) - 1)), default=0.0)
        tree = tree_from_intervals(cuts, Rectangle((domain[0],),
                                                   (domain[1],)))
        return OneDimResult(cuts, bounds, max_err, tree)

    def _partition_materialized(self, k: int, n_population: int,
                                domain: Tuple[float, float]
                                ) -> OneDimResult:
        """AVG: one O(m) in-order scan, then the array algorithm."""
        keys = np.empty(len(self._treap))
        values = np.empty(len(self._treap))
        for rank, (key, _, value) in enumerate(self._treap.items()):
            keys[rank] = key
            values[rank] = value
        return OneDimPartitioner(self.agg, rho=self.rho,
                                 delta=self.delta).partition(
                                     keys, values, k,
                                     n_population=n_population,
                                     domain=domain)
