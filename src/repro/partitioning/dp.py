"""Dynamic-programming 1-D partitioner: the PASS baseline of Table 3.

PASS [30] finds the partitioning minimizing the maximum bucket error with
a classic minimax dynamic program over sample ranks:

    dp[j][i] = min over l < i of max(dp[j-1][l], cost(l, i))

where ``cost(l, i)`` is the (approximate) max-variance error of bucket
``[l, i)`` - the same oracle the binary-search partitioner uses, so the
two algorithms optimize the identical objective and Table 3 isolates the
*search strategy*.  The DP explores O(m^2 k) bucket candidates versus the
binary search's O(k log m log log N); the inner minimization is
vectorized with numpy but the asymptotic gap is exactly what the paper's
Table 3 measures.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..core.queries import AggFunc, Rectangle
from .maxvar import PrefixStats
from .onedim import OneDimResult
from .spec import tree_from_intervals


class DPPartitioner:
    """Exact minimax DP over bucket boundaries (PASS's algorithm)."""

    def __init__(self, agg: AggFunc = AggFunc.SUM,
                 delta: float = 0.05) -> None:
        self.agg = agg
        self.delta = delta

    def partition(self, keys: np.ndarray, values: np.ndarray, k: int,
                  n_population: Optional[int] = None,
                  domain: Optional[Tuple[float, float]] = None
                  ) -> OneDimResult:
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        order = np.argsort(keys, kind="stable")
        keys, values = keys[order], values[order]
        m = keys.shape[0]
        if m == 0:
            raise ValueError("cannot partition an empty sample")
        k = max(1, min(k, m))
        n_population = n_population if n_population is not None else m
        pop_ratio = n_population / m
        window = max(4, int(self.delta * m))
        cost = self._cost_matrix(values, pop_ratio, window)

        # dp[i]: best max-error covering samples [0, i) with j buckets.
        dp = cost[0, 1:m + 1].copy()           # j = 1
        choice = np.zeros((k, m + 1), dtype=np.int64)
        dp_full = np.full(m + 1, np.inf)
        dp_full[1:] = dp
        dp_full[0] = 0.0
        for j in range(1, k):
            new_dp = np.full(m + 1, np.inf)
            for i in range(j + 1, m + 1):
                # candidates l in [j, i): max(dp_full[l], cost[l, i])
                cand = np.maximum(dp_full[j:i], cost[j:i, i])
                l_best = int(np.argmin(cand))
                new_dp[i] = cand[l_best]
                choice[j, i] = j + l_best
            dp_full = new_dp
        bounds = self._backtrack(choice, k, m)
        cuts = []
        for b in bounds[1:-1]:
            c = float(keys[b - 1])
            if not cuts or c > cuts[-1]:
                cuts.append(c)
        max_err = float(dp_full[m]) if math.isfinite(dp_full[m]) else 0.0
        lo_d, hi_d = (domain if domain is not None
                      else (float(keys[0]), float(keys[-1])))
        tree = tree_from_intervals(cuts, Rectangle((lo_d,), (hi_d,)))
        return OneDimResult(cuts, bounds, max_err, tree)

    # ------------------------------------------------------------------ #
    def _cost_matrix(self, values: np.ndarray, pop_ratio: float,
                     window: int) -> np.ndarray:
        """``cost[l, i]`` = error of bucket [l, i) for all pairs.

        O(m^2) space/time; vectorized per right endpoint.  This is the
        inherent cost of the DP approach that Table 3 demonstrates.
        """
        m = values.shape[0]
        prefix = PrefixStats(values)
        p1, p2 = prefix.p1, prefix.p2
        cost = np.zeros((m + 1, m + 1))
        ls = np.arange(m + 1)
        for i in range(1, m + 1):
            l = ls[:i]
            m_b = i - l                                      # bucket sizes
            if self.agg is AggFunc.COUNT:
                c = m_b // 2
                n_b = pop_ratio * m_b
                with np.errstate(divide="ignore", invalid="ignore"):
                    var = np.where(m_b > 1,
                                   (n_b * n_b) / (m_b ** 3)
                                   * (m_b * c - c * c), 0.0)
            elif self.agg is AggFunc.SUM:
                mid = l + m_b // 2
                var = np.zeros(i, dtype=np.float64)
                for lo_idx, hi_idx in ((l, mid), (mid, np.full(i, i))):
                    s = p1[hi_idx] - p1[lo_idx]
                    s2 = p2[hi_idx] - p2[lo_idx]
                    n_b = pop_ratio * m_b
                    with np.errstate(divide="ignore", invalid="ignore"):
                        v = np.where(
                            m_b > 1,
                            (n_b * n_b) / (m_b ** 3)
                            * np.maximum(m_b * s2 - s * s, 0.0), 0.0)
                    var = np.maximum(var, v)
            else:  # AVG: all left endpoints share one window-stat pass
                var = self._avg_cost_row(p1, p2, i, window)
            cost[:i, i] = np.sqrt(np.maximum(var, 0.0))
        return cost

    @staticmethod
    def _avg_cost_row(p1: np.ndarray, p2: np.ndarray, i: int,
                      window: int) -> np.ndarray:
        """AVG max-variance of every bucket ``[l, i)`` for one ``i``.

        Vectorizes the former per-``l`` ``PrefixStats.max_var_avg``
        loop over the shared prefix sums, like the SUM/COUNT branches:
        buckets no longer than the window are their own (single)
        window, and longer buckets take the best of the
        ``window``-sample segments starting inside them, computed as
        one broadcast over (bucket, segment) pairs with a running
        suffix restriction.  Matches the scalar oracle bit for bit -
        same prefix differences, same products, same max.
        """
        l = np.arange(i)
        m_b = i - l
        var = np.zeros(i, dtype=np.float64)
        # Short buckets (m_b <= window): w = m_b, one whole-bucket window.
        short = m_b <= window
        if short.any():
            ls = l[short]
            mb = m_b[short].astype(np.float64)
            s = p1[i] - p1[ls]
            s2 = p2[i] - p2[ls]
            with np.errstate(divide="ignore", invalid="ignore"):
                v = np.where(mb > 1,
                             np.maximum(mb * s2 - s * s, 0.0) / (mb ** 3),
                             0.0)
            var[short] = v
        # Long buckets (m_b > window): w = window; bucket [l, i) scans
        # segments [t, t + w) for t in [l, i - w].
        n_long = i - window            # these are l = 0 .. i - window - 1
        if n_long > 0:
            w = window
            t_hi = p2[w:i + 1] - p2[:i - w + 1]          # sumsq per segment
            t_s1 = p1[w:i + 1] - p1[:i - w + 1]
            seg_b = t_s1 * t_s1                          # (sum)^2 per segment
            mb = m_b[:n_long].astype(np.float64)
            scores = mb[:, None] * t_hi[None, :] - seg_b[None, :]
            # segment t is admissible for bucket l only when t >= l
            t_idx = np.arange(t_hi.shape[0])
            scores[t_idx[None, :] < np.arange(n_long)[:, None]] = -np.inf
            best = scores.max(axis=1)
            var[:n_long] = np.maximum(best / (mb * w * w), 0.0)
        return var

    @staticmethod
    def _backtrack(choice: np.ndarray, k: int, m: int) -> List[int]:
        bounds = [m]
        i = m
        for j in range(k - 1, 0, -1):
            i = int(choice[j, i])
            bounds.append(i)
        bounds.append(0)
        bounds = sorted(set(bounds))
        return bounds
