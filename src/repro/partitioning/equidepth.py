"""Equal-depth (equi-count) partitioning.

Two uses in the paper: the strata of the stratified-reservoir baseline
("the strata is constructed using a equal-depth partitioning algorithm",
Section 6.1.3), and the optimal COUNT partitioning in one dimension
("the optimum partition in 1D consists of equal size buckets", D.2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.queries import Rectangle
from .spec import PartitionNode, tree_from_intervals


def equidepth_boundaries(keys: np.ndarray, k: int) -> List[float]:
    """Interior cut points placing ~equal sample counts per bucket."""
    keys = np.sort(np.asarray(keys, dtype=np.float64))
    m = keys.shape[0]
    if m == 0:
        return []
    k = max(1, min(k, m))
    cuts: List[float] = []
    for i in range(1, k):
        idx = round(i * m / k) - 1
        c = float(keys[idx])
        if not cuts or c > cuts[-1]:
            cuts.append(c)
    return cuts


def equidepth_tree(keys: np.ndarray, k: int,
                   domain: Optional[Tuple[float, float]] = None
                   ) -> PartitionNode:
    """A balanced binary partition tree with equal-depth leaves."""
    keys = np.asarray(keys, dtype=np.float64)
    lo, hi = domain if domain is not None else (float(keys.min()),
                                                float(keys.max()))
    cuts = equidepth_boundaries(keys, k)
    return tree_from_intervals(cuts, Rectangle((lo,), (hi,)))
