"""Random rectangular query workload generation (paper, Section 6.1).

"We generate query workloads of 2000 queries by uniformly sampling from
rectangular range queries over the predicates."  A query rectangle is
drawn by sampling, per predicate dimension, a uniform sub-interval of the
attribute's domain.  For multi-dimensional templates the paper notes that
many uniform rectangles match nothing early in the stream (Figure 9), so
the generator optionally rejects queries whose ground-truth support on a
reference table is below a floor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.queries import AggFunc, Query, Rectangle
from ..core.table import Table


def random_rectangle(domains: Sequence[Tuple[float, float]],
                     rng: np.random.Generator,
                     min_width_frac: float = 0.02,
                     max_width_frac: float = 0.50) -> Rectangle:
    """A uniform random axis-aligned rectangle inside the given domains."""
    bounds = []
    for lo, hi in domains:
        span = hi - lo
        if span <= 0:
            bounds.append((lo, hi))
            continue
        width = span * rng.uniform(min_width_frac, max_width_frac)
        start = rng.uniform(lo, hi - width)
        bounds.append((start, start + width))
    return Rectangle.from_bounds(bounds)


def data_rectangle(columns: Sequence[np.ndarray],
                   rng: np.random.Generator) -> Rectangle:
    """A rectangle whose per-dimension endpoints are two sampled data
    values.  On heavy-tailed attributes this follows the data density
    (uniform-over-domain rectangles would mostly land in empty tail
    regions), which is how selective real-data predicates behave.
    """
    bounds = []
    for col in columns:
        a, b = rng.choice(col, size=2, replace=True)
        bounds.append((float(min(a, b)), float(max(a, b))))
    return Rectangle.from_bounds(bounds)


def generate_workload(table: Table, agg: AggFunc, attr: str,
                      predicate_attrs: Sequence[str], n_queries: int = 2000,
                      seed: int = 0, min_count: int = 0,
                      min_width_frac: float = 0.02,
                      max_width_frac: float = 0.50,
                      endpoints: str = "domain") -> List[Query]:
    """``n_queries`` random queries over the table's current data.

    ``endpoints="domain"`` draws uniform sub-intervals of each attribute
    domain; ``endpoints="data"`` draws interval endpoints from the data
    values themselves (density-following).  ``min_count`` > 0 rejects
    rectangles matching fewer than that many rows *right now* - used for
    the multi-dimensional experiments where uniform rectangles are often
    empty.
    """
    if endpoints not in ("domain", "data"):
        raise ValueError("endpoints must be 'domain' or 'data'")
    rng = np.random.default_rng(seed)
    domains = [table.domain(a) for a in predicate_attrs]
    columns = [table.column(a) for a in predicate_attrs]
    queries: List[Query] = []
    attempts = 0
    max_attempts = 50 * n_queries
    while len(queries) < n_queries and attempts < max_attempts:
        attempts += 1
        if endpoints == "domain":
            rect = random_rectangle(domains, rng, min_width_frac,
                                    max_width_frac)
        else:
            rect = data_rectangle(columns, rng)
        query = Query(agg, attr, tuple(predicate_attrs), rect)
        if min_count > 0:
            mask = table.predicate_mask(predicate_attrs, rect)
            if int(mask.sum()) < min_count:
                continue
        queries.append(query)
    return queries
