"""Synthetic datasets and query workloads for the experiments."""

from .synthetic import Dataset, intel_wireless, load, nasdaq_etf, nyc_taxi
from .workload import generate_workload, random_rectangle

__all__ = ["Dataset", "intel_wireless", "load", "nasdaq_etf", "nyc_taxi",
           "generate_workload", "random_rectangle"]
