"""Shape-matched synthetic stand-ins for the paper's three datasets.

The paper evaluates on Intel Wireless (sensor readings, 3M rows), NYC Taxi
January 2019 (7.7M rows) and NASDAQ ETF prices (4M rows).  Those files are
not available offline, so each generator below produces a table with the
same schema roles, marginal shapes and correlations that the experiments
exercise (see DESIGN.md, substitution 1):

* :func:`intel_wireless` - a time-ordered sensor log whose ``light``
  column follows a diurnal cycle with sensor noise and occasional spikes;
  ``time`` is the 1-D predicate attribute of Table 2/Figure 7.
* :func:`nyc_taxi` - trips with rush-hour-peaked ``pickup_time``,
  log-normal ``trip_distance``, a correlated ``dropoff_time``, and a
  uniform ``pickup_time_of_day`` used by Figure 10's second scenario.
* :func:`nasdaq_etf` - entries with heavy-tailed ``volume`` and four
  random-walk price columns, the 5-D template of Figure 9.

Default sizes are scaled down (pure-Python harness) but every generator
takes ``n``; distributional shape does not depend on ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A generated table plus the query template the paper uses on it."""

    name: str
    schema: Tuple[str, ...]
    data: np.ndarray                      # (n, len(schema))
    agg_attr: str
    predicate_attrs: Tuple[str, ...]

    @property
    def n(self) -> int:
        return self.data.shape[0]

    def column(self, attr: str) -> np.ndarray:
        return self.data[:, self.schema.index(attr)]


def intel_wireless(n: int = 60_000, seed: int = 0) -> Dataset:
    """Sensor log: time, light, temperature, humidity, voltage."""
    rng = np.random.default_rng(seed)
    time = np.sort(rng.uniform(0.0, 30.0, n))            # days
    phase = 2.0 * np.pi * (time % 1.0)
    # Diurnal light: dark at night, bright mid-day, sensor noise + spikes.
    light = np.clip(
        600.0 * np.maximum(0.0, np.sin(phase - np.pi / 2.0)) ** 2
        + rng.normal(0.0, 25.0, n)
        + (rng.random(n) < 0.01) * rng.uniform(400, 900, n),
        0.0, None)
    temperature = (20.0 + 6.0 * np.sin(phase - np.pi / 2.0)
                   + rng.normal(0.0, 1.0, n))
    humidity = np.clip(45.0 - 0.8 * (temperature - 20.0)
                       + rng.normal(0.0, 4.0, n), 5.0, 95.0)
    voltage = np.clip(2.7 - 0.01 * time + rng.normal(0.0, 0.02, n), 2.0, 3.0)
    data = np.column_stack([time, light, temperature, humidity, voltage])
    return Dataset("intel_wireless",
                   ("time", "light", "temperature", "humidity", "voltage"),
                   data, agg_attr="light", predicate_attrs=("time",))


def nyc_taxi(n: int = 80_000, seed: int = 0) -> Dataset:
    """Taxi trips: pickup_time, dropoff_time, time-of-day, distance, fare."""
    rng = np.random.default_rng(seed)
    day = rng.integers(0, 31, n).astype(np.float64)
    # Time-of-day mixture: morning and evening rush peaks over a base.
    comp = rng.random(n)
    tod = np.where(
        comp < 0.30, rng.normal(8.5, 1.2, n),
        np.where(comp < 0.65, rng.normal(18.0, 1.7, n),
                 rng.uniform(0.0, 24.0, n)))
    tod = np.mod(tod, 24.0)
    pickup_time = day * 24.0 + tod                        # hours since Jan 1
    # Trip length depends on time of day the way real taxi data does:
    # long early-morning airport runs, short rush-hour hops.  This within-
    # cluster predicate/aggregate correlation is what separates unbiased
    # sampling synopses from fixed-resolution learned models (Table 2).
    tod_factor = (1.0
                  + 1.8 * np.exp(-((tod - 4.5) / 1.4) ** 2)
                  - 0.45 * np.exp(-((tod - 8.5) / 1.2) ** 2)
                  - 0.35 * np.exp(-((tod - 18.0) / 1.6) ** 2))
    trip_distance = np.clip(rng.lognormal(0.7, 0.9, n) * tod_factor,
                            0.1, 60.0)
    duration = trip_distance * rng.uniform(0.05, 0.2, n) + \
        rng.exponential(0.08, n)
    dropoff_time = pickup_time + duration
    passengers = rng.integers(1, 7, n).astype(np.float64)
    fare = 2.5 + 2.2 * trip_distance + rng.normal(0.0, 1.5, n)
    data = np.column_stack([pickup_time, dropoff_time, tod,
                            trip_distance, passengers, fare])
    return Dataset("nyc_taxi",
                   ("pickup_time", "dropoff_time", "pickup_time_of_day",
                    "trip_distance", "passenger_count", "fare"),
                   data, agg_attr="trip_distance",
                   predicate_attrs=("pickup_time",))


def nasdaq_etf(n: int = 80_000, seed: int = 0) -> Dataset:
    """ETF entries: date, volume and four random-walk prices."""
    rng = np.random.default_rng(seed)
    n_funds = 200
    per_fund = max(n // n_funds, 1)
    dates, volumes, opens, closes, highs, lows = [], [], [], [], [], []
    remaining = n
    for fund in range(n_funds):
        rows = per_fund if fund < n_funds - 1 else remaining
        if rows <= 0:
            break
        remaining -= rows
        t = np.sort(rng.uniform(0.0, 8000.0, rows))       # days since 1986
        base = rng.uniform(10.0, 300.0)
        returns = rng.normal(0.0, 0.02, rows)
        walk = base * np.exp(np.cumsum(returns))
        spread = np.abs(rng.normal(0.0, 0.01, rows)) * walk
        open_p = walk * (1.0 + rng.normal(0.0, 0.005, rows))
        close_p = walk
        high_p = np.maximum(open_p, close_p) + spread
        low_p = np.clip(np.minimum(open_p, close_p) - spread, 0.01, None)
        # Volume spikes on volatile days (the classic volume-volatility
        # coupling) so volume-predicated price aggregates carry real
        # cross-column structure.
        vol = rng.lognormal(10.0 + rng.normal(0, 0.8), 1.0, rows) * \
            (1.0 + 40.0 * np.abs(returns))
        dates.append(t)
        volumes.append(vol)
        opens.append(open_p)
        closes.append(close_p)
        highs.append(high_p)
        lows.append(low_p)
    data = np.column_stack([np.concatenate(dates), np.concatenate(volumes),
                            np.concatenate(opens), np.concatenate(closes),
                            np.concatenate(highs), np.concatenate(lows)])
    return Dataset("nasdaq_etf",
                   ("date", "volume", "open", "close", "high", "low"),
                   data, agg_attr="close", predicate_attrs=("volume",))


_GENERATORS = {
    "intel_wireless": intel_wireless,
    "nyc_taxi": nyc_taxi,
    "nasdaq_etf": nasdaq_etf,
}


def load(name: str, n: int, seed: int = 0) -> Dataset:
    """Load a named dataset at a given scale."""
    try:
        gen = _GENERATORS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; "
                       f"available: {sorted(_GENERATORS)}") from None
    return gen(n=n, seed=seed)
