"""Epoch-tagged per-template LRU result cache for the serving tier.

A cached answer is only valid for the exact data version it was
computed against: any insert, delete, re-optimization or catch-up batch
changes what the synopsis would answer.  Rather than tracking
fine-grained invalidation, the engines expose a monotone ``data_epoch``
counter (bumped inside :class:`~repro.core.janus.JanusAQP` under its
lock, summed across the fleet by
:class:`~repro.core.sharded.ShardedJanusAQP`), and every cache key
embeds the epoch the answer was computed at:

* a **lookup** uses the engine's *current* epoch, so an entry from an
  older epoch can never be returned - staleness is structurally
  impossible, not policed;
* a **store** is accepted only when the epoch observed *before* the
  engine ran the query still equals the epoch *after* it finished
  (:meth:`ResultCache.store` takes both); if a write raced the query,
  the result is simply not cached;
* old-epoch entries become unreachable garbage and are recycled by the
  per-template LRU.

Entries are partitioned by template key
(:func:`repro.core.templates.template_key` - aggregation attribute +
predicate attributes), each template holding its own LRU of
``per_template`` entries, so one hot template cannot evict another
template's working set.  Hits return the cached
:class:`~repro.core.queries.QueryResult` without touching the synopsis
at all - no lock, no frontier traversal.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..core.queries import Query, QueryResult
from ..core.templates import TemplateKey, template_key
from ..obs.metrics import MetricsRegistry

__all__ = ["CacheStats", "ResultCache", "cache_key"]

#: (agg, aggregation attr, parameter, rectangle bounds) - the
#: per-template part of a key; the epoch is prepended by the cache
#: itself.  The parameter distinguishes PERCENTILE(x, 0.5) from
#: PERCENTILE(x, 0.9) and TOPK(x, 5) from TOPK(x, 10), which share a
#: template but answer different questions.
QueryKey = Tuple[str, str, Optional[float], Tuple[float, ...],
                 Tuple[float, ...]]


def cache_key(query: Query) -> QueryKey:
    """Canonical hashable identity of one query within its template."""
    return (query.agg.value, query.attr, query.param,
            query.rect.lo, query.rect.hi)


class CacheStats:
    """Counters reported by ``/stats`` and ``/metrics``.

    Registry-backed: the counts live in ``janus_service_cache_*``
    instruments (shared with the server's ``/metrics`` page when the
    owning cache is given the server's registry); the historical
    attribute surface (``stats.hits`` etc.) remains as read-only
    properties.
    """

    __slots__ = ("_hits", "_misses", "_stores", "_rejected", "_evicted")

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        registry = metrics if metrics is not None else MetricsRegistry()
        self._hits = registry.counter("janus_service_cache_hits_total")
        self._misses = registry.counter(
            "janus_service_cache_misses_total")
        self._stores = registry.counter(
            "janus_service_cache_stores_total")
        # epoch moved while query in flight
        self._rejected = registry.counter(
            "janus_service_cache_rejected_stores_total")
        self._evicted = registry.counter(
            "janus_service_cache_evictions_total")

    def note_hit(self) -> None:
        self._hits.inc()

    def note_miss(self) -> None:
        self._misses.inc()

    def note_store(self) -> None:
        self._stores.inc()

    def note_rejected_store(self) -> None:
        self._rejected.inc()

    def note_eviction(self) -> None:
        self._evicted.inc()

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def stores(self) -> int:
        return int(self._stores.value)

    @property
    def rejected_stores(self) -> int:
        return int(self._rejected.value)

    @property
    def evictions(self) -> int:
        return int(self._evicted.value)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores,
                "rejected_stores": self.rejected_stores,
                "evictions": self.evictions,
                "hit_ratio": self.hit_ratio}


class ResultCache:
    """Per-template LRU of epoch-tagged query results.

    Thread-safe: the server's asyncio loop and the executor threads that
    complete batches both touch it.  ``enabled=False`` turns every
    operation into a no-op miss, which is how the bit-identical serving
    mode (and its test) runs.
    """

    def __init__(self, per_template: int = 256,
                 enabled: bool = True,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if per_template < 1:
            raise ValueError("per_template must be >= 1")
        self.per_template = int(per_template)
        self.enabled = bool(enabled)
        self.stats = CacheStats(metrics)  # thread-safe instruments
        self._lock = threading.Lock()
        self._lru: Dict[TemplateKey,  # guarded-by: _lock
                        "OrderedDict[Tuple[int, QueryKey], QueryResult]"
                        ] = {}

    def __len__(self) -> int:
        with self._lock:
            return sum(len(lru) for lru in self._lru.values())

    def lookup(self, query: Query, epoch: int) -> Optional[QueryResult]:
        """The cached answer at exactly ``epoch``, or ``None``.

        Pass the engine's *current* ``data_epoch``: entries tagged with
        any other epoch can never match, so a hit is always fresh.
        """
        if not self.enabled:
            return None
        key = (int(epoch), cache_key(query))
        with self._lock:
            lru = self._lru.get(template_key(query))
            result = lru.get(key) if lru is not None else None
            if result is None:
                self.stats.note_miss()
                return None
            lru.move_to_end(key)
            self.stats.note_hit()
            return result

    def store(self, query: Query, result: QueryResult,
              epoch_before: int, epoch_after: int) -> bool:
        """Admit an answer computed between two epoch observations.

        ``epoch_before`` must be read from the engine before the query
        executed and ``epoch_after`` once it returned; a difference
        means a write interleaved and the result may reflect either
        side, so it is rejected (counted, never served).
        """
        if not self.enabled:
            return False
        if int(epoch_before) != int(epoch_after):
            self.stats.note_rejected_store()
            return False
        key = (int(epoch_after), cache_key(query))
        with self._lock:
            lru = self._lru.setdefault(template_key(query), OrderedDict())
            lru[key] = result
            lru.move_to_end(key)
            self.stats.note_store()
            while len(lru) > self.per_template:
                lru.popitem(last=False)
                self.stats.note_eviction()
        return True

    def clear(self) -> None:
        with self._lock:
            self._lru.clear()
