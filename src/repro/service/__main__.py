"""CLI entry point: ``python -m repro.service``.

Starts an :class:`~repro.service.server.AQPServer` over either

* a warm-started :class:`~repro.core.sharded.ShardedJanusAQP` restored
  from a :func:`~repro.core.persist.save_sharded` directory
  (``--load DIR``), or
* a demo engine seeded from a named synthetic dataset
  (``--dataset``/``--rows``), sharded when ``--shards > 1``, or
* a process-per-shard :class:`~repro.service.fleet.FleetCoordinator`
  (``--workers N``): the demo (or ``--load``) snapshot is served by
  ``N`` supervised worker processes, one shard each, so query fan-out
  runs on ``N`` independent GILs.

Examples::

    PYTHONPATH=src python -m repro.service --port 8080 --shards 4
    PYTHONPATH=src python -m repro.service --port 8080 --workers 4
    PYTHONPATH=src python -m repro.service --load /var/lib/janus/snap

Runs until interrupted (Ctrl-C shuts down gracefully).
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from ..core.janus import JanusAQP, JanusConfig
from ..core.sharded import ShardedJanusAQP
from ..core.table import Table
from ..datasets import synthetic
from .server import AQPServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve approximate aggregate queries over HTTP/JSON.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="0 picks an ephemeral port")
    parser.add_argument("--load", metavar="DIR", default=None,
                        help="warm-start from a save_sharded() directory")
    parser.add_argument("--shards", type=int, default=1,
                        help="shard count for a fresh demo engine")
    parser.add_argument("--workers", type=int, default=0,
                        help="serve through a process-per-shard fleet "
                             "of N worker processes (0 = in-process)")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="cap the in-process fan-out pool / fleet "
                             "dispatch pool (default: min(shards, "
                             "cpu_count))")
    parser.add_argument("--dataset", default="nyc_taxi",
                        help="synthetic dataset seeding the demo engine")
    parser.add_argument("--rows", type=int, default=50_000,
                        help="rows to seed the demo engine with")
    parser.add_argument("--k", type=int, default=64,
                        help="partition-tree leaves (per shard)")
    parser.add_argument("--sample-rate", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-batch", type=int, default=64,
                        help="micro-batch size cap")
    parser.add_argument("--linger-ms", type=float, default=2.0,
                        help="micro-batch linger deadline")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="result-cache entries per template")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache entirely")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        help="log a one-line JSON event for any "
                             "/query or /sql slower than this many "
                             "milliseconds")
    parser.add_argument("--trace-sample", type=int, default=64,
                        help="trace 1 in N read requests (0 disables "
                             "sampling; explain and X-Janus-Trace "
                             "still trace)")
    return parser


def build_engine(args: argparse.Namespace):
    if args.workers > 0:
        return _build_fleet(args)
    if args.load is not None:
        from ..core.persist import load_sharded
        engine = load_sharded(args.load)
        print(f"warm-started {engine.n_shards} shard(s), "
              f"{len(engine.table):,} rows from {args.load}")
        return engine
    ds = synthetic.load(args.dataset, n=args.rows, seed=args.seed)
    config = JanusConfig(k=args.k, sample_rate=args.sample_rate,
                         seed=args.seed)
    if args.shards > 1:
        engine = ShardedJanusAQP(ds.schema, ds.agg_attr,
                                 ds.predicate_attrs,
                                 n_shards=args.shards,
                                 max_workers=args.max_workers,
                                 config=config)
        engine.insert_many(ds.data)
        engine.initialize()
    else:
        table = Table(ds.schema, capacity=ds.n + 16)
        table.insert_many(ds.data)
        engine = JanusAQP(table, ds.agg_attr, ds.predicate_attrs,
                          config=config)
        engine.initialize()
    print(f"seeded {args.dataset}: {len(engine.table):,} rows, "
          f"{args.shards} shard(s), template "
          f"{ds.agg_attr} / {', '.join(ds.predicate_attrs)}")
    return engine


def _build_fleet(args: argparse.Namespace):
    """Spawn a :class:`FleetCoordinator` over ``--workers`` processes.

    With ``--load`` the given snapshot directory is served directly
    (its shard count wins over ``--workers``); otherwise a demo
    sharded engine is built, snapshotted to a temp directory, closed,
    and the fleet warm-starts every worker from that snapshot.
    """
    import tempfile

    from .fleet import FleetCoordinator

    if args.load is not None:
        snapdir = args.load
    else:
        ds = synthetic.load(args.dataset, n=args.rows, seed=args.seed)
        config = JanusConfig(k=args.k, sample_rate=args.sample_rate,
                             seed=args.seed)
        seed_engine = ShardedJanusAQP(ds.schema, ds.agg_attr,
                                      ds.predicate_attrs,
                                      n_shards=args.workers,
                                      max_workers=args.max_workers,
                                      config=config)
        seed_engine.insert_many(ds.data)
        seed_engine.initialize()
        snapdir = tempfile.mkdtemp(prefix="janus-fleet-")
        from ..core.persist import save_sharded
        save_sharded(seed_engine, snapdir)
        seed_engine.close()
    engine = FleetCoordinator(snapdir, max_workers=args.max_workers)
    print(f"fleet up: {engine.n_shards} worker process(es), "
          f"{len(engine):,} rows from {snapdir}")
    return engine


async def serve(args: argparse.Namespace) -> None:
    engine = build_engine(args)
    server = AQPServer(engine, host=args.host, port=args.port,
                       max_batch=args.max_batch,
                       max_linger_ms=args.linger_ms,
                       cache_size=args.cache_size,
                       cache_enabled=not args.no_cache,
                       slow_query_ms=args.slow_query_ms,
                       trace_sample=args.trace_sample)
    host, port = await server.start()
    print(f"serving on http://{host}:{port}  "
          f"(routes: /query /sql /insert /delete /stats /metrics "
          f"/debug/traces)")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:     # non-Unix event loops
            pass
    try:
        await stop.wait()
    finally:
        await server.stop()
        close = getattr(engine, "close", None)
        if close is not None:
            close()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(serve(args))
    except KeyboardInterrupt:
        pass
    print("shutting down")
    return 0


if __name__ == "__main__":
    sys.exit(main())
