"""Query serving layer: an async HTTP/JSON front-end for the engine.

The subsystem turns the in-process batched engine (PRs 1-4) into a
client-facing AQP service, stdlib only:

* :mod:`~repro.service.sqlfront` - a SQL-subset parser compiling
  ``SELECT AGG(col) FROM t WHERE a BETWEEN x AND y [AND ...]`` into
  :class:`~repro.core.queries.Query` objects;
* :mod:`~repro.service.batcher` - micro-batching admission that
  coalesces concurrently in-flight requests into ``query_many`` calls;
* :mod:`~repro.service.cache` - an epoch-tagged per-template LRU result
  cache invalidated structurally by the engines' ``data_epoch``;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` - the
  asyncio HTTP/1.1 server (``/query``, ``/sql``, ``/insert``,
  ``/delete``, ``/stats``, ``/metrics``, ``/debug/traces``) and the
  thin synchronous client the tests and benchmark drive it with -
  metrics ride the shared :mod:`repro.obs` registry, reads are
  span-traced at 1-in-N sampling, and ``"explain": true`` returns
  per-stage timings plus the routing decision;
* :mod:`~repro.service.fleet` / :mod:`~repro.service.worker` - the
  process-per-shard serving fleet (``--workers N``): one supervised
  worker process per shard behind a binary frame protocol
  (:mod:`repro.broker.frames`), bit-identical to the in-process
  sharded engine and free of its single shared GIL.

``python -m repro.service`` starts a server from the command line; see
``examples/serving.py`` for the end-to-end walkthrough and
``docs/ARCHITECTURE.md`` for the request data flow.
"""

from .batcher import BatcherStats, MicroBatcher
from .cache import CacheStats, ResultCache
from .client import ServiceClient, ServiceError
from .fleet import FleetCoordinator, FleetUnavailableError
from .server import AQPServer, ServiceHandle, serve_background
from .sqlfront import ParsedSQL, SQLError, compile_sql, parse_sql

__all__ = [
    "AQPServer", "BatcherStats", "CacheStats", "FleetCoordinator",
    "FleetUnavailableError", "MicroBatcher", "ParsedSQL",
    "ResultCache", "SQLError", "ServiceClient", "ServiceError",
    "ServiceHandle", "compile_sql", "parse_sql", "serve_background",
]
