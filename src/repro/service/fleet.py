"""Process-per-shard serving fleet: the coordinator side.

:class:`FleetCoordinator` presents the exact engine surface
:class:`~repro.core.sharded.ShardedJanusAQP` gives the serving tier
(``insert_many`` / ``delete_many`` / ``query_many`` / ``reoptimize``,
``data_epoch``, the table facade, routing stats), but each shard's
synopsis lives in its own **worker process**
(:mod:`repro.service.worker`), reached over the length-prefixed binary
protocol of :mod:`repro.broker.frames`.  N workers mean N interpreters
and N GILs, so shard work genuinely overlaps on multi-core hosts -
the in-process fan-out's thread pool only overlaps the numpy kernels.

The answer contract is **bit-identity** with the in-process sharded
engine: the coordinator reuses the same placement
(:class:`~repro.core.placement.PlacementMap`), the same planner
(:func:`~repro.core.routing.plan_query_subsets`) and the same merge
(:func:`~repro.core.merge.merge_planned`); workers warm-start from the
same :func:`~repro.core.persist.save_sharded` snapshot and replay the
identical per-shard operation sequence, so every per-shard answer -
and therefore every merged answer - is byte-for-byte what
``load_sharded(...)`` of the same snapshot would produce
(``tests/test_fleet.py`` gates this for all seven aggregates through
interleaved insert/delete/reoptimize).

Crash safety: every mutation is appended to a per-shard **journal
before it is sent**, and the coordinator's mirrors (local-tid
counters, live counts, epochs) advance whether or not the worker is
up - local tids are deterministic, so the mutation's effect is known
without the worker's reply.  A dead worker therefore never loses a
mutation: the supervisor respawns it from the pristine snapshot,
replays the journal (exactly-once - the crashed process's partial
state is discarded wholesale), re-adopts an exact routing summary and
only then swaps it live.  Queries that need a dead shard fail with
:class:`FleetUnavailableError` (a 503 at the HTTP layer, see
:mod:`repro.service.server`) rather than a wrong or torn answer;
queries the router proves don't need that shard keep being answered.

Locking: per-shard ``_shard_locks[s]`` serialize journal-append +
frame send + worker swap, so the journal order always equals the
worker-applied order (replay determinism); the coordinator-wide
``_mirror_lock`` guards the counter mirrors.  The order is always
shard lock -> mirror lock -> (worker io lock), never the reverse.
"""

from __future__ import annotations

import io
import json
import os
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..broker.frames import (HEADER, OP_DELETE, OP_ERR, OP_INSERT,
                             OP_PING, OP_QUERY, OP_REOPT, OP_SHUTDOWN,
                             OP_STATS, OP_SUMMARY, RESULT_DTYPE,
                             attach_sketch_frames, decode_result_block,
                             decode_sketch_block, recv_frame,
                             send_frame, split_reply)
from ..broker.requests import encode_query
from ..core.merge import merge_planned
from ..core.placement import PlacementMap
from ..core.queries import Query, QueryResult
from ..core.routing import (RoutingStats, ShardSummary,
                            plan_query_subsets)
from ..core.persist import read_sharded_manifest
from ..obs.logs import log_event
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceContext, decode_spans, maybe_span

__all__ = ["FleetCoordinator", "FleetUnavailableError", "RemoteShard"]


class FleetUnavailableError(RuntimeError):
    """A query needs a shard whose worker is down.

    The serving tier maps this to **503 Service Unavailable**: the
    answer would be wrong without the shard, so the only honest
    responses are a correct one or an explicit refusal.  The
    supervisor restarts the worker within one supervision cycle;
    clients retry.
    """


class _WorkerDied(ConnectionError):
    """Internal: the worker socket broke mid-request (crash or kill)."""


#: Exception types a worker ERR frame may carry back across the wire.
_EXC_TYPES = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "RuntimeError": RuntimeError,
    "NotImplementedError": NotImplementedError,
}


class RemoteShard:
    """Coordinator-side handle for one worker process.

    Owns the subprocess, the socketpair end and the per-worker wire
    counters.  ``request`` is the only I/O path: one frame out, one
    reply in, under the handle's own lock, so concurrent callers
    (data path vs supervisor ping) never interleave frames.
    """

    def __init__(self, snapshot: Union[str, Path], shard_id: int,
                 timeout: float = 120.0,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.snapshot = Path(snapshot)
        self.shard_id = int(shard_id)
        self.timeout = float(timeout)
        self._io_lock = threading.RLock()
        self._proc: Optional[subprocess.Popen] = None
        self._sock: Optional[socket.socket] = None
        self._down = True  # lock-free-read: one-way until spawn/destroy
        # Wire counters live in the (thread-safe) metrics registry;
        # passing the coordinator's registry means a restarted
        # worker's fresh handle keeps accumulating into the same
        # per-shard-slot series.
        registry = metrics if metrics is not None else MetricsRegistry()
        label = str(self.shard_id)
        self._c_requests = registry.counter(
            "janus_fleet_worker_requests_total", worker=label)
        self._c_bytes_sent = registry.counter(
            "janus_fleet_worker_bytes_sent_total", worker=label)
        self._c_bytes_received = registry.counter(
            "janus_fleet_worker_bytes_received_total", worker=label)
        self._h_latency = registry.histogram(
            "janus_fleet_worker_request_seconds", worker=label)

    def spawn(self) -> None:
        """Start the worker process and hand it its socketpair end."""
        parent, child = socket.socketpair()
        env = dict(os.environ)
        # The worker must resolve the same `repro` package this
        # coordinator runs, wherever the parent found it.
        pkg_root = str(Path(__file__).resolve().parents[2])
        extra = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (pkg_root + os.pathsep + extra
                             if extra else pkg_root)
        self._proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker",
             "--fd", str(child.fileno()),
             "--snapshot", str(self.snapshot),
             "--shard", str(self.shard_id)],
            pass_fds=(child.fileno(),), env=env)
        child.close()
        parent.settimeout(self.timeout)
        self._sock = parent
        self._down = False

    def alive(self) -> bool:
        """Lock-free liveness: process up and socket not known-broken."""
        proc = self._proc
        return (not self._down and proc is not None
                and proc.poll() is None)

    def request(self, opcode: int, meta: int = 0, bufs: Sequence = (),
                trace: Optional[Tuple[int, int]] = None
                ) -> Tuple[int, int, memoryview, bytes]:
        """One round trip: returns ``(reply_meta, epoch, body, spans)``.

        ``trace`` is an optional ``(trace_id, parent_span_id)`` pair
        stamped into the request header; a traced OP_QUERY reply
        carries back a JSON span sidecar (its byte length rides the
        reply header's ``span`` field), returned stripped from
        ``body`` as the ``spans`` element (``b""`` when untraced).
        Raises :class:`_WorkerDied` on any transport failure (and
        marks the handle down for the supervisor); re-raises typed
        application errors the worker shipped in an ERR frame.
        """
        trace_id, parent_span = trace if trace is not None else (0, 0)
        with self._io_lock:
            if self._down or self._sock is None:
                raise _WorkerDied(f"worker {self.shard_id} is down")
            start = time.monotonic()
            try:
                sent = send_frame(self._sock, opcode, meta, bufs,
                                  trace_id=trace_id, span=parent_span)
                r_op, r_meta, payload, _r_trace, r_span = \
                    recv_frame(self._sock)
            except (OSError, EOFError, ValueError) as exc:
                self._down = True
                raise _WorkerDied(
                    f"worker {self.shard_id} transport failed: "
                    f"{exc}") from exc
            self._c_requests.inc()
            self._c_bytes_sent.inc(sent)
            self._c_bytes_received.inc(HEADER.size + len(payload))
            self._h_latency.observe(time.monotonic() - start)
        if r_op == OP_ERR:
            name, _, msg = bytes(payload).decode("utf-8").partition("\n")
            raise _EXC_TYPES.get(name, RuntimeError)(msg)
        epoch, body = split_reply(payload)
        spans = b""
        if r_span:
            spans = bytes(body[-r_span:])
            body = body[:-r_span]
        return r_meta, epoch, body, spans

    # Mirror the pre-registry attribute surface for /stats readers.
    @property
    def n_requests(self) -> int:
        return int(self._c_requests.value)

    @property
    def bytes_sent(self) -> int:
        return int(self._c_bytes_sent.value)

    @property
    def bytes_received(self) -> int:
        return int(self._c_bytes_received.value)

    def counters(self) -> Dict[str, object]:
        """Wire counters for ``/metrics`` (p50 over recent requests)."""
        return {
            "requests": self.n_requests,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "p50_seconds": self._h_latency.percentile(0.5),
        }

    def destroy(self, graceful: bool = True) -> None:
        """Tear the worker down (idempotent)."""
        with self._io_lock:
            if graceful and not self._down and self._sock is not None:
                try:
                    self._sock.settimeout(5.0)
                    send_frame(self._sock, OP_SHUTDOWN)
                    recv_frame(self._sock)
                except (OSError, EOFError, ValueError):
                    pass
            self._down = True
            if self._sock is not None:
                self._sock.close()
                self._sock = None
        if self._proc is not None:
            try:
                self._proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait()


class _FleetTableView:
    """Read-only table facade over the fleet (coordinator mirrors)."""

    def __init__(self, owner: "FleetCoordinator") -> None:
        self._owner = owner

    @property
    def schema(self) -> Tuple[str, ...]:
        return self._owner.schema

    def __contains__(self, tid: int) -> bool:
        return self._owner._placement.live(tid)

    def __len__(self) -> int:
        return len(self._owner)


class FleetCoordinator:
    """Drop-in multi-process replacement for ``ShardedJanusAQP``.

    Built from a :func:`~repro.core.persist.save_sharded` snapshot
    directory; one worker process per shard is spawned immediately and
    warm-starts from it.  See the module docstring for the identity,
    crash-safety and locking contracts.

    Parameters
    ----------
    snapshot_dir:
        A ``save_sharded`` snapshot; also the pristine state workers
        restart from after a crash (plus a journal replay).
    max_workers:
        Coordinator-side fan-out thread width (default: shard count
        capped at ``os.cpu_count()``, as for the in-process engine).
    supervise_interval:
        Seconds between supervisor health sweeps (ping + restart).
    request_timeout:
        Per-round-trip socket timeout; a worker that exceeds it is
        treated as crashed.
    supervise:
        Disableable for tests that drive :meth:`check_workers`
        manually.
    log_stream:
        Destination for structured one-line JSON event logs (worker
        restarts); ``None`` means ``sys.stderr``.
    """

    def __init__(self, snapshot_dir: Union[str, Path],
                 max_workers: Optional[int] = None,
                 supervise_interval: float = 1.0,
                 request_timeout: float = 120.0,
                 supervise: bool = True,
                 log_stream=None) -> None:
        manifest = read_sharded_manifest(snapshot_dir)
        meta = manifest["meta"]
        self.snapshot_dir = Path(snapshot_dir)
        self.schema = tuple(meta["schema"])
        self.agg_attr = meta["agg_attr"]
        self.predicate_attrs = tuple(meta["predicate_attrs"])
        self.stat_attrs = tuple(meta["stat_attrs"])
        # The serving tier validates sketch aggregates against this the
        # same way it does for an in-process engine; every worker's
        # shard is built from the same archived config.
        self.sketch_attrs = tuple(
            meta.get("config", {}).get("sketch_attrs", ()))
        self.n_shards = int(meta["n_shards"])
        self.route_attr = meta.get("route_attr")
        self._pred_cols = np.array(
            [self.schema.index(a) for a in self.predicate_attrs],
            dtype=np.intp)
        route_col = (self.schema.index(self.route_attr)
                     if self.route_attr else 0)
        self._placement = PlacementMap(
            self.n_shards, meta["sharding"],
            range_block=int(meta["range_block"]), route_col=route_col,
            attr_bounds=manifest["attr_bounds"])
        self._placement.restore(manifest["shard_of"],
                                manifest["local_tid"],
                                int(meta["next_tid"]))
        #: Coordinator-owned routing summaries (planner reads them
        #: lock-free exactly as the in-process engine's planner does).
        self.summaries: List[ShardSummary] = list(manifest["summaries"])
        #: One registry for the whole fleet: routing counters, the
        #: per-worker wire series and restart counts all land here, and
        #: the serving tier merges it into ``/metrics``.
        self.metrics = MetricsRegistry()
        self._log_stream = log_stream
        self._routing_stats = RoutingStats(self.n_shards,
                                           metrics=self.metrics)
        self.route_queries = True

        self._mirror_lock = threading.RLock()
        self._epochs = [0] * self.n_shards  # guarded-by: _mirror_lock
        self._next_local = [int(t) for t in meta["table_next_tids"]]  # guarded-by: _mirror_lock
        self._n_live = [int(v) for v in manifest["table_sizes"]]  # guarded-by: _mirror_lock
        self._initialized = [bool(b) for b in meta["initialized"]]  # guarded-by: _mirror_lock
        self._journals: List[List[tuple]] = [
            [] for _ in range(self.n_shards)]  # guarded-by: _mirror_lock
        self._restarts = [0] * self.n_shards  # guarded-by: _mirror_lock

        # Per-shard send serializers: journal append + frame send +
        # worker swap happen under _shard_locks[s], so journal order
        # always equals worker-applied order and a restart's replay
        # excludes nothing.  (Element locks: one instance per shard,
        # only ever acquired one shard at a time by a fan-out closure.)
        self._shard_locks = [threading.RLock()
                             for _ in range(self.n_shards)]
        self._pool: Optional[ThreadPoolExecutor] = None  # guarded-by: _pool_lock
        self._pool_lock = threading.Lock()
        self._max_workers = max_workers or min(self.n_shards,
                                               os.cpu_count() or 1)
        self.workers: List[RemoteShard] = [
            RemoteShard(self.snapshot_dir, s, timeout=request_timeout,
                        metrics=self.metrics)
            for s in range(self.n_shards)]
        for worker in self.workers:
            worker.spawn()
        self.table = _FleetTableView(self)
        self._stop_event = threading.Event()
        self._supervise_interval = float(supervise_interval)
        self._supervisor: Optional[threading.Thread] = None
        if supervise:
            self._supervisor = threading.Thread(
                target=self._supervise, daemon=True,
                name="janus-fleet-supervisor")
            self._supervisor.start()

    # ------------------------------------------------------------------ #
    # fan-out machinery (mirrors ShardedJanusAQP)
    # ------------------------------------------------------------------ #
    def _executor(self) -> ThreadPoolExecutor:
        pool = self._pool  # lock-free-read: double-checked fast path
        if pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self._max_workers,
                        thread_name_prefix="janus-fleet")
                pool = self._pool
        return pool

    def _fan_out(self, fn: Callable[[int], object],
                 shard_ids: Sequence[int]) -> List[object]:
        shard_ids = list(shard_ids)
        if len(shard_ids) <= 1:
            return [fn(s) for s in shard_ids]
        pool = self._executor()
        futures = [pool.submit(fn, s) for s in shard_ids]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------ #
    # epochs and sizes
    # ------------------------------------------------------------------ #
    def bump_epoch(self, shard_id: int) -> None:
        """Advance shard ``shard_id``'s mirrored epoch.

        Runs at journal time, before the worker is even asked, so the
        serving tier's result cache invalidates on every mutation even
        while the owning worker is down; worker-reported epochs later
        fold in through ``max`` (monotone, restart-proof - a replayed
        worker restarts its own count from the snapshot).
        """
        with self._mirror_lock:
            self._epochs[shard_id] += 1

    def _note_epoch(self, shard_id: int, worker_epoch: int) -> None:
        with self._mirror_lock:
            self._epochs[shard_id] = max(self._epochs[shard_id],
                                         int(worker_epoch))

    @property
    def data_epoch(self) -> int:
        """Monotone fleet-wide data version (cache key), mirrored."""
        with self._mirror_lock:
            return sum(self._epochs)

    def __len__(self) -> int:
        with self._mirror_lock:
            return sum(self._n_live)

    def shard_sizes(self) -> List[int]:
        """Live row count per shard (coordinator mirror)."""
        with self._mirror_lock:
            return list(self._n_live)

    @property
    def pool_size(self) -> int:
        """Total pooled-sample size, summed over reachable workers."""
        total = 0
        for s in range(self.n_shards):
            try:
                with self._shard_locks[s]:
                    _m, _e, body, _ = self.workers[s].request(OP_STATS)
            except _WorkerDied:
                continue
            total += int(json.loads(bytes(body).decode())["pool_size"])
        return total

    def routing_stats(self) -> dict:
        """Cumulative router counters, as for the in-process engine."""
        return self._routing_stats.to_dict()

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #
    def insert(self, values: Sequence[float]) -> int:
        """Insert one row; returns its global tid."""
        return self.insert_many(
            np.asarray(values, dtype=np.float64)[None, :])[0]

    def insert_many(self, rows: np.ndarray) -> List[int]:
        """Bulk insert: place once, journal, then fan out raw blocks.

        Local tids are mirrored deterministically (each worker's table
        assigns consecutive tids and never reuses them), so the batch
        commits even if a worker is mid-crash - its slice is journaled
        and replayed on restart; a live worker's reply is checked
        against the mirror and any divergence fails loudly.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.size == 0:
            return []
        if rows.ndim != 2:
            raise ValueError("rows must be a 2-D (n, n_attrs) array")
        if rows.shape[1] != len(self.schema):
            raise ValueError(f"rows have {rows.shape[1]} columns, "
                             f"schema has {len(self.schema)}")
        tids, placement = self._placement.begin_insert(rows)

        def ingest(s: int) -> Tuple[np.ndarray, np.ndarray]:
            sel = np.flatnonzero(placement == s)
            sub = np.ascontiguousarray(rows[sel])
            with self._shard_locks[s]:
                with self._mirror_lock:
                    base = self._next_local[s]
                    self._next_local[s] += sub.shape[0]
                    self._n_live[s] += sub.shape[0]
                    self._initialized[s] = True
                    self._journals[s].append(("i", sub))
                self.bump_epoch(s)
                local = np.arange(base, base + sub.shape[0],
                                  dtype=np.int64)
                repartitioned = False
                try:
                    flag, epoch, body, _ = self.workers[s].request(
                        OP_INSERT, sub.shape[1], [sub])
                    got = np.frombuffer(body, dtype=np.int64)
                    if not np.array_equal(got, local):
                        raise RuntimeError(
                            f"worker {s} local tids diverged from the "
                            f"coordinator mirror")
                    self._note_epoch(s, epoch)
                    repartitioned = bool(flag)
                except _WorkerDied:
                    pass  # journaled; the supervisor's replay applies it
                if repartitioned:
                    # The batch tripped the shard's auto-repartition:
                    # adopt its post-rebuild exact summary, as the
                    # in-process coordinator refreshes in place.
                    self._fetch_summary(s)
                else:
                    self.summaries[s].add(sub[:, self._pred_cols])
            return sel, local

        touched = np.unique(placement).tolist()
        results = self._fan_out(ingest, touched)
        self._placement.commit_insert(
            tids, placement, dict(zip(touched, results)))
        return tids.tolist()

    def delete(self, tid: int) -> None:
        """Delete one live row by global tid."""
        self.delete_many((tid,))

    def delete_many(self, tids: Sequence[int]) -> None:
        """Bulk delete by global tid.

        Validation is entirely coordinator-side (the placement map
        knows liveness), so a dead or duplicated tid raises
        ``KeyError`` before any worker is touched - the same
        all-or-nothing contract as the in-process engine.  The worker
        replies with the dying rows' predicate coordinates so the
        coordinator can uncount them from its routing summary; while a
        worker is down the uncount is skipped (summaries err
        conservative-high) and the post-replay summary re-tightens.
        """
        tid_arr = np.asarray(tids if isinstance(tids, np.ndarray)
                             else [int(t) for t in tids], dtype=np.int64)
        if tid_arr.size == 0:
            return
        owners, locals_ = self._placement.begin_delete(tid_arr)

        def drop(s: int) -> None:
            local = np.ascontiguousarray(locals_[owners == s])
            with self._shard_locks[s]:
                with self._mirror_lock:
                    self._n_live[s] -= local.shape[0]
                    self._journals[s].append(("d", local))
                self.bump_epoch(s)
                try:
                    _m, epoch, body, _ = self.workers[s].request(
                        OP_DELETE, 0, [local])
                    coords = np.frombuffer(body, dtype="<f8").reshape(
                        -1, self._pred_cols.shape[0])
                    self.summaries[s].remove(coords)
                    self._note_epoch(s, epoch)
                except _WorkerDied:
                    pass  # journaled; replay restores, summary refreshes

        self._fan_out(drop, np.unique(owners).tolist())

    def reoptimize(self) -> None:
        """Staggered re-initialization, one shard at a time.

        Each worker rebuilds in its own process; the coordinator
        adopts the post-rebuild exact summary (the in-process
        coordinator's piggybacked refresh, shipped over the wire).
        """
        for s in range(self.n_shards):
            with self._mirror_lock:
                up = self._initialized[s]
            if not up:
                continue
            with self._shard_locks[s]:
                with self._mirror_lock:
                    self._journals[s].append(("r",))
                self.bump_epoch(s)
                try:
                    flag, epoch, body, _ = \
                        self.workers[s].request(OP_REOPT)
                    if flag:
                        self._adopt_summary(s, body)
                    self._note_epoch(s, epoch)
                except _WorkerDied:
                    pass  # journaled; replay re-optimizes on restart

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, query: Query) -> QueryResult:
        """Answer one query from the fleet."""
        return self.query_many((query,))[0]

    def query_many(self, queries: Sequence[Query],
                   route: Optional[bool] = None,
                   obs: Optional[TraceContext] = None
                   ) -> List[QueryResult]:
        """Answer a query batch: plan, dispatch sub-batches, merge.

        Identical pipeline to the in-process engine - shared planner,
        shared merge, same single-shard fast path - except the
        per-shard sub-batches travel as broker-codec records and the
        answers come back as raw :data:`~repro.broker.frames.RESULT_DTYPE`
        blocks.  A query whose contributing subset includes a dead
        worker raises :class:`FleetUnavailableError`; queries the
        router proves don't need it still succeed.  ``obs`` is an
        optional trace context: plan/execute/merge spans are recorded
        (worker-side spans cross the wire and are grafted under the
        per-shard ``shard_execute`` span) and the routing decision is
        noted for the EXPLAIN report.  The answer path is identical
        with and without ``obs``.
        """
        queries = list(queries)
        if not queries:
            return []
        route = self.route_queries if route is None else bool(route)
        with self._mirror_lock:
            live = [s for s in range(self.n_shards)
                    if self._initialized[s]]
            empties = [n == 0 for n in self._n_live]
        if not live:
            raise RuntimeError("synopsis not initialized")
        with maybe_span(obs, "plan", n_queries=len(queries)):
            subsets = plan_query_subsets(queries, self.predicate_attrs,
                                         self.summaries, live)
        self._routing_stats.record([len(c) for c in subsets], len(live),
                                   route)
        if obs is not None:
            obs.note("subsets", [list(c) for c in subsets])
            obs.note("live", list(live))
            obs.note("routed", bool(route))
        if route:
            first = subsets[0]
            if len(first) == 1 and all(c == first for c in subsets):
                with maybe_span(obs, "execute") as ex:
                    return self._ask(first[0], queries, obs=obs,
                                     parent=ex["id"] if ex else None)
            by_shard: Dict[int, List[int]] = {s: [] for s in live}
            for qi, contrib in enumerate(subsets):
                for s in contrib:
                    by_shard[s].append(qi)
            work = [(s, qis) for s, qis in by_shard.items() if qis]
            with maybe_span(obs, "execute") as ex:
                parent = ex["id"] if ex else None
                batches = self._fan_out(
                    lambda w: self._ask(
                        work[w][0],
                        [queries[qi] for qi in work[w][1]],
                        obs=obs, parent=parent),
                    range(len(work)))
            answers = {}
            for (s, qis), batch in zip(work, batches):
                for pos, qi in enumerate(qis):
                    answers[(s, qi)] = batch[pos]
            get = lambda s, qi: answers[(s, qi)]
        else:
            with maybe_span(obs, "execute") as ex:
                parent = ex["id"] if ex else None
                per_shard = self._fan_out(
                    lambda s: self._ask(s, queries, obs=obs,
                                        parent=parent), live)
            of_shard = dict(zip(live, per_shard))
            get = lambda s, qi: of_shard[s][qi]
        with maybe_span(obs, "merge"):
            return merge_planned(queries, subsets, get,
                                 lambda s: empties[s])

    def _ask(self, s: int, queries: Sequence[Query],
             obs: Optional[TraceContext] = None,
             parent: Optional[int] = None) -> List[QueryResult]:
        """One shard answers one sub-batch (broker codec over frames).

        Traced requests stamp ``(trace_id, shard_execute span id)``
        into the frame header; the worker's reply spans come back as a
        sidecar and are grafted under this call's ``shard_execute``
        span.  ``parent`` is passed explicitly because fan-out runs on
        executor threads, where the thread-local parent stack is empty.
        """
        payload = "\n".join(encode_query(qi, q)
                            for qi, q in enumerate(queries)).encode()
        with maybe_span(obs, "shard_execute", parent=parent,
                        shard=s, n_queries=len(queries)) as sp:
            trace = (obs.trace_id, sp["id"]) if obs is not None else None
            with self._shard_locks[s]:
                try:
                    n, epoch, body, span_blob = self.workers[s].request(
                        OP_QUERY, 0, [payload], trace=trace)
                except _WorkerDied as exc:
                    raise FleetUnavailableError(
                        f"shard {s} worker is down; the fleet restarts "
                        f"it within one supervision cycle - retry"
                    ) from exc
            if obs is not None and span_blob:
                obs.add_foreign_spans(decode_spans(span_blob),
                                      default_parent=sp["id"])
        self._note_epoch(s, epoch)
        # The fixed block is exactly n records; whatever follows is the
        # variable-length sketch sidecar of answers that carry blobs.
        fixed_end = n * RESULT_DTYPE.itemsize
        results = decode_result_block(body[:fixed_end])
        if len(results) != len(queries):
            raise RuntimeError(
                f"worker {s} answered {len(results)} of "
                f"{len(queries)} queries")
        attach_sketch_frames(results, decode_sketch_block(body[fixed_end:]))
        return results

    # ------------------------------------------------------------------ #
    # supervision and recovery
    # ------------------------------------------------------------------ #
    def _supervise(self) -> None:
        while not self._stop_event.wait(self._supervise_interval):
            self.check_workers()

    def check_workers(self) -> int:
        """One supervision sweep: ping, then restart the dead.

        Returns how many workers were restarted.  Public so tests and
        single-threaded embeddings can drive recovery deterministically
        (construct with ``supervise=False``).
        """
        restarted = 0
        for s in range(self.n_shards):
            worker = self.workers[s]
            if worker.alive():
                try:
                    worker.request(OP_PING)
                except _WorkerDied:
                    pass
            if not self.workers[s].alive() and self._restart(s):
                restarted += 1
        return restarted

    def _restart(self, s: int) -> bool:
        """Respawn shard ``s`` from the snapshot and replay its journal.

        Holds the shard lock throughout: mutations queue behind the
        replay (and keep journaling), so when the fresh worker is
        swapped live it has applied *exactly* the journal - nothing
        lost, nothing twice.
        """
        with self._shard_locks[s]:
            if self._stop_event.is_set():
                return False
            self.workers[s].destroy(graceful=False)
            fresh = RemoteShard(self.snapshot_dir, s,
                                timeout=self.workers[s].timeout,
                                metrics=self.metrics)
            with self._mirror_lock:
                replayed = len(self._journals[s])
            try:
                fresh.spawn()
                self._replay(fresh, s)
            except (_WorkerDied, OSError):
                fresh.destroy(graceful=False)
                return False  # still down; next sweep tries again
            self.workers[s] = fresh
            with self._mirror_lock:
                self._restarts[s] += 1
                n_restarts = self._restarts[s]
            self.metrics.counter("janus_fleet_worker_restarts_total",
                                 worker=str(s)).inc()
            log_event(self._log_stream, "worker_restart", shard=s,
                      restarts=n_restarts, journal_entries=replayed)
        return True

    def _replay(self, fresh: RemoteShard, s: int) -> None:
        """Apply shard ``s``'s journal to a pristine warm start."""
        with self._mirror_lock:
            entries = list(self._journals[s])
        for entry in entries:
            if entry[0] == "i":
                sub = entry[1]
                fresh.request(OP_INSERT, sub.shape[1], [sub])
            elif entry[0] == "d":
                fresh.request(OP_DELETE, 0, [entry[1]])
            else:
                fresh.request(OP_REOPT)
        # Post-replay exact summary + epoch resync: the mirror kept
        # counting while the worker was down, so only adopt forward.
        _m, epoch, body, _ = fresh.request(OP_SUMMARY)
        self._adopt_summary(s, body)
        self._note_epoch(s, epoch)

    def _fetch_summary(self, s: int) -> None:
        try:
            with self._shard_locks[s]:
                _m, epoch, body, _ = self.workers[s].request(OP_SUMMARY)
        except _WorkerDied:
            return  # replay's post-restart summary will cover it
        self._adopt_summary(s, body)
        self._note_epoch(s, epoch)

    def _adopt_summary(self, s: int, body) -> None:
        with np.load(io.BytesIO(bytes(body)),
                     allow_pickle=False) as archive:
            arrays = {key: archive[key]
                      for key in ("meta", "lo", "hi", "edges", "counts")}
        self.summaries[s] = ShardSummary.from_state_arrays(arrays)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def fleet_health(self) -> Dict[str, object]:
        """``/health`` payload: ok when every worker is up."""
        with self._mirror_lock:
            restarts = list(self._restarts)
        workers = {}
        n_alive = 0
        for s in range(self.n_shards):
            up = self.workers[s].alive()
            n_alive += int(up)
            workers[str(s)] = {"alive": bool(up),
                               "restarts": restarts[s]}
        return {
            "status": "ok" if n_alive == self.n_shards else "degraded",
            "mode": "fleet",
            "n_workers": self.n_shards,
            "n_alive": n_alive,
            "workers": workers,
        }

    def fleet_stats(self) -> Dict[str, object]:
        """Per-worker wire counters for ``/stats`` and ``/metrics``."""
        with self._mirror_lock:
            restarts = list(self._restarts)
        workers = {}
        for s in range(self.n_shards):
            counters = self.workers[s].counters()
            counters["restarts"] = restarts[s]
            counters["alive"] = self.workers[s].alive()
            workers[str(s)] = counters
        return {"n_workers": self.n_shards, "workers": workers}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop supervision, drain the workers, shut the pool down."""
        self._stop_event.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=2 * self._supervise_interval
                                  + 5.0)
            self._supervisor = None
        for s in range(self.n_shards):
            with self._shard_locks[s]:
                self.workers[s].destroy()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
