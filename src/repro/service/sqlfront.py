"""SQL front-end: a small SELECT-aggregate subset compiled to queries.

The serving tier accepts the textual form of the only query shape a
partition-tree synopsis answers (paper Section 3.1)::

    SELECT <AGG>(<col> | *) FROM <table>
      [WHERE <col> BETWEEN <num> AND <num>
         [AND <col> <op> <num>] ...]

* ``<AGG>`` is one of SUM, COUNT, AVG, MIN, MAX, VARIANCE, STDDEV
  (case-insensitive, like every keyword); ``COUNT(*)`` is allowed.
* The sketch-backed aggregates take their parameter inside the call:
  ``PERCENTILE(col, p)`` with ``p`` in ``[0, 1]``, ``TOPK(col, k)``
  with an integral ``k >= 1``, and ``COUNT(DISTINCT col)`` compiles to
  the COUNT_DISTINCT aggregate.  They are table-wide: a WHERE clause
  on a sketch aggregate is rejected by the engine, not here.
* The WHERE clause is a conjunction of range predicates over the
  engine's predicate attributes: ``BETWEEN`` (closed on both sides,
  like :class:`~repro.core.queries.Rectangle`), the comparisons
  ``>= <= > < =``, and repeats on the same column intersect.  Strict
  inequalities are tightened to the adjacent float
  (``math.nextafter``), which is exact for the closed-rectangle model.
* Unconstrained predicate attributes default to ``(-inf, +inf)``.

Compilation is a two-step pipeline so errors point at the right layer:
:func:`parse_sql` turns text into a :class:`ParsedSQL` (pure syntax,
raising :class:`SQLError` with the offending position), and
:func:`compile_sql` binds it against an engine template - aggregation
attribute and predicate-attribute order - producing the
:class:`~repro.core.queries.Query` the batched engine executes.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.queries import AggFunc, Query, Rectangle, SKETCH_AGGS

__all__ = ["SQLError", "ParsedSQL", "aggregate_arity", "parse_sql",
           "compile_sql"]


def aggregate_arity(agg: AggFunc) -> int:
    """Extra call arguments the aggregate's SQL form takes.

    The parser consults this to accept/reject ``AGG(col, x)`` forms,
    so it must dispatch every :class:`AggFunc` member explicitly - the
    JL305 merge-closure site: growing the enum without deciding its
    textual shape fails janus-lint here.
    """
    if agg in (AggFunc.PERCENTILE, AggFunc.TOPK):
        return 1
    if agg in (AggFunc.SUM, AggFunc.COUNT, AggFunc.AVG, AggFunc.MIN,
               AggFunc.MAX, AggFunc.VARIANCE, AggFunc.STDDEV,
               AggFunc.COUNT_DISTINCT):
        return 0
    raise ValueError(f"aggregate {agg} has no SQL arity rule")


class SQLError(ValueError):
    """A syntax or binding error, annotated with the source position."""

    def __init__(self, message: str, sql: str, pos: int) -> None:
        pointer = sql[max(0, pos - 20):pos + 20]
        super().__init__(f"{message} at position {pos}: ...{pointer!r}...")
        self.sql = sql
        self.pos = pos


@dataclass(frozen=True)
class ParsedSQL:
    """The syntactic content of one statement, before template binding.

    ``conditions`` holds per-column closed bounds ``col -> (lo, hi)``
    in first-mention order; ``attr`` is ``None`` for ``COUNT(*)``.
    ``attr_pos`` and ``condition_positions`` (one entry per condition,
    the column's first mention) let binding errors point at the
    offending token.
    """

    agg: AggFunc
    attr: Optional[str]
    table: str
    conditions: Tuple[Tuple[str, float, float], ...]
    attr_pos: int = 0
    condition_positions: Tuple[int, ...] = ()
    #: The parameterized aggregates' argument (PERCENTILE's fraction,
    #: TOPK's k); ``None`` for every zero-arity aggregate.
    param: Optional[float] = None


_TOKEN_RE = re.compile(r"""
    \s*(?:
      (?P<num>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?(?![A-Za-z_])|
              [-+]?(?:infinity|inf)(?![A-Za-z_0-9]))
    | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    | (?P<op>>=|<=|<>|!=|=|<|>|\(|\)|\*|,)
    )""", re.VERBOSE)

_KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "BETWEEN", "DISTINCT"}


@dataclass(frozen=True)
class _Token:
    kind: str       # "num" | "ident" | "op" | "end"
    text: str
    pos: int


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None or match.end() == pos:
            if sql[pos:].strip() == "":
                break
            bad = pos + len(sql[pos:]) - len(sql[pos:].lstrip())
            raise SQLError(f"unexpected character {sql[bad]!r}", sql, bad)
        kind = match.lastgroup
        tokens.append(_Token(kind, match.group(kind),
                             match.start(kind)))
        pos = match.end()
    tokens.append(_Token("end", "", len(sql)))
    return tokens


class _Parser:
    """Recursive descent over the token list; one statement per call."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = _tokenize(sql)
        self.i = 0

    # ---- token helpers ------------------------------------------------ #
    @property
    def cur(self) -> _Token:
        return self.tokens[self.i]

    def _advance(self) -> _Token:
        token = self.cur
        self.i += 1
        return token

    def _fail(self, message: str) -> "SQLError":
        return SQLError(message, self.sql, self.cur.pos)

    def expect_keyword(self, word: str) -> None:
        if not (self.cur.kind == "ident" and
                self.cur.text.upper() == word):
            raise self._fail(f"expected {word}")
        self._advance()

    def expect_op(self, op: str) -> None:
        if not (self.cur.kind == "op" and self.cur.text == op):
            raise self._fail(f"expected {op!r}")
        self._advance()

    def identifier(self, what: str) -> str:
        if self.cur.kind != "ident" or \
                self.cur.text.upper() in _KEYWORDS:
            raise self._fail(f"expected {what}")
        return self._advance().text

    def number(self) -> float:
        if self.cur.kind != "num":
            raise self._fail("expected a number")
        return float(self._advance().text)

    # ---- grammar ------------------------------------------------------ #
    def statement(self) -> ParsedSQL:
        self.expect_keyword("SELECT")
        agg_token = self.cur
        agg_name = self.identifier("an aggregate function").upper()
        try:
            agg = AggFunc(agg_name)
        except ValueError:
            raise SQLError(
                f"unknown aggregate {agg_name!r} (one of "
                f"{'/'.join(a.value for a in AggFunc)})",
                self.sql, agg_token.pos) from None
        self.expect_op("(")
        attr_pos = self.cur.pos
        if self.cur.kind == "ident" and \
                self.cur.text.upper() == "DISTINCT":
            if agg is not AggFunc.COUNT:
                raise self._fail(
                    f"DISTINCT is only supported inside COUNT, not "
                    f"{agg.value}")
            self._advance()
            agg = AggFunc.COUNT_DISTINCT
            attr_pos = self.cur.pos
            if self.cur.kind == "op" and self.cur.text == "*":
                raise self._fail("COUNT(DISTINCT *) is not defined; "
                                 "name a column")
            attr: Optional[str] = self.identifier(
                "a column to count distinct values of")
        elif self.cur.kind == "op" and self.cur.text == "*":
            if agg is not AggFunc.COUNT:
                raise self._fail(f"{agg.value}(*) is not defined; "
                                 "name a column")
            self._advance()
            attr = None
            attr_pos = agg_token.pos
        else:
            attr = self.identifier("an aggregation column")
        param: Optional[float] = None
        if self.cur.kind == "op" and self.cur.text == ",":
            if aggregate_arity(agg) == 0:
                raise self._fail(
                    f"{agg.value} does not take a parameter")
            self._advance()
            param_pos = self.cur.pos
            param = self.number()
            self._check_param(agg, param, param_pos)
        elif aggregate_arity(agg) == 1:
            raise self._fail(
                f"{agg.value} needs a parameter: "
                f"{agg.value}(col, "
                f"{'p' if agg is AggFunc.PERCENTILE else 'k'})")
        self.expect_op(")")
        self.expect_keyword("FROM")
        table = self.identifier("a table name")
        conditions, positions = self.where_clause()
        if self.cur.kind != "end":
            raise self._fail("trailing input after statement")
        return ParsedSQL(agg, attr, table, tuple(conditions),
                         attr_pos=attr_pos,
                         condition_positions=tuple(positions),
                         param=param)

    def _check_param(self, agg: AggFunc, param: float,
                     pos: int) -> None:
        """Range-check a parameter where the text still points at it."""
        if agg is AggFunc.PERCENTILE and not 0.0 <= param <= 1.0:
            raise SQLError(
                f"PERCENTILE fraction must be in [0, 1], got {param!r}",
                self.sql, pos)
        if agg is AggFunc.TOPK and (param != int(param) or param < 1):
            raise SQLError(
                f"TOPK k must be an integer >= 1, got {param!r}",
                self.sql, pos)

    def where_clause(self) -> Tuple[List[Tuple[str, float, float]],
                                    List[int]]:
        if self.cur.kind == "end":
            return [], []
        self.expect_keyword("WHERE")
        bounds: Dict[str, Tuple[float, float]] = {}
        pos_of: Dict[str, int] = {}
        order: List[str] = []
        while True:
            pos, col, lo, hi = self.predicate()
            if col in bounds:
                a, b = bounds[col]
                lo, hi = max(a, lo), min(b, hi)
            else:
                order.append(col)
                pos_of[col] = pos
            bounds[col] = (lo, hi)
            if self.cur.kind == "ident" and \
                    self.cur.text.upper() == "AND":
                self._advance()
                continue
            break
        return ([(col, *bounds[col]) for col in order],
                [pos_of[col] for col in order])

    def predicate(self) -> Tuple[int, str, float, float]:
        pos = self.cur.pos
        col = self.identifier("a predicate column")
        if self.cur.kind == "ident" and \
                self.cur.text.upper() == "BETWEEN":
            self._advance()
            lo = self.number()
            self.expect_keyword("AND")
            hi = self.number()
            return pos, col, lo, hi
        if self.cur.kind != "op" or \
                self.cur.text not in (">=", "<=", ">", "<", "="):
            raise self._fail("expected BETWEEN or a comparison "
                             "(>=, <=, >, <, =)")
        op = self._advance().text
        value = self.number()
        if op == ">=":
            return pos, col, value, math.inf
        if op == "<=":
            return pos, col, -math.inf, value
        if op == ">":        # strict: tighten to the next float
            return pos, col, math.nextafter(value, math.inf), math.inf
        if op == "<":
            return (pos, col, -math.inf,
                    math.nextafter(value, -math.inf))
        return pos, col, value, value   # "=" - a degenerate interval


def parse_sql(sql: str) -> ParsedSQL:
    """Parse one statement of the supported subset.

    Raises :class:`SQLError` (a ``ValueError``) with the source position
    on any syntax problem; binding against an engine template is
    :func:`compile_sql`'s job.
    """
    return _Parser(sql).statement()


def compile_sql(sql: str, agg_attr: str,
                predicate_attrs: Sequence[str],
                stat_attrs: Optional[Sequence[str]] = None) -> Query:
    """Parse and bind one statement against an engine template.

    ``agg_attr`` substitutes for ``COUNT(*)``; ``predicate_attrs``
    fixes the rectangle's dimension order, with unconstrained
    dimensions left unbounded; ``stat_attrs``, when given, is the set
    of columns the synopsis tracks statistics for and the aggregation
    column is validated against it (``COUNT`` aside).  Binding errors -
    an untracked aggregation column, a WHERE column outside the
    template, or a provably empty interval - raise :class:`SQLError`
    pointing at the statement.
    """
    parsed = parse_sql(sql)
    pred_attrs = tuple(predicate_attrs)
    attr = parsed.attr if parsed.attr is not None else agg_attr
    # Sketch aggregates bind against the engine's sketch_attrs, a set
    # this template does not carry; the serving tier validates them
    # per engine (:meth:`JanusService._validate_queries`).
    if stat_attrs is not None and parsed.agg is not AggFunc.COUNT \
            and parsed.agg not in SKETCH_AGGS \
            and attr not in tuple(stat_attrs):
        raise SQLError(
            f"aggregation column {attr!r} is not tracked by this "
            f"synopsis (tracked: {', '.join(stat_attrs)})", sql,
            parsed.attr_pos)
    for (col, lo, hi), pos in zip(parsed.conditions,
                                  parsed.condition_positions):
        if col not in pred_attrs:
            raise SQLError(
                f"column {col!r} is not a predicate attribute of this "
                f"synopsis (template: {', '.join(pred_attrs)})", sql,
                pos)
        if lo > hi:
            raise SQLError(
                f"empty interval for column {col!r}: "
                f"[{lo!r}, {hi!r}]", sql, pos)
    bound = {col: (lo, hi) for col, lo, hi in parsed.conditions}
    lo = tuple(bound.get(a, (-math.inf, math.inf))[0]
               for a in pred_attrs)
    hi = tuple(bound.get(a, (-math.inf, math.inf))[1]
               for a in pred_attrs)
    return Query(parsed.agg, attr, pred_attrs, Rectangle(lo, hi),
                 parsed.param)
