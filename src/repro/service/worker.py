"""Fleet worker: one process, one JanusAQP shard, one binary socket.

Spawned by the fleet coordinator (:mod:`repro.service.fleet`) as::

    python -m repro.service.worker --fd N --snapshot DIR --shard S

where ``N`` is an inherited socketpair end and ``DIR`` a
:func:`~repro.core.persist.save_sharded` snapshot the worker
warm-starts shard ``S`` from (:func:`~repro.core.persist.load_shard`).
The process then runs a single-threaded frame loop over the protocol
of :mod:`repro.broker.frames`: the coordinator owns placement, routing
summaries and merging; the worker owns exactly one synopsis and its
archival table, so the numpy hot paths of N workers run on N
interpreters with N GILs.

Determinism is the contract: the worker applies the identical
operation sequence the in-process ``ShardedJanusAQP`` shard would see
(same warm-start state, same lazy-initialize + stagger on first
insert, same RNG stream from the snapshot's per-shard seed), so its
answers are bit-identical to that shard's - the fleet's answer-identity
gate rests on it.  Every reply carries the shard's ``data_epoch`` so
the coordinator's cache mirror tracks mutations without extra round
trips.

The loop is intentionally single-threaded: the coordinator serializes
frames per worker, so there is nothing to lock here, and a crash of
any kind simply ends the process - the coordinator's supervisor
detects the broken socket and respawns from the snapshot.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import socket
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..broker.frames import (OP_DELETE, OP_ERR, OP_INSERT, OP_OK,
                             OP_PING, OP_QUERY, OP_REOPT, OP_SHUTDOWN,
                             OP_STATS, OP_SUMMARY, encode_result_block,
                             encode_sketch_block, extract_sketch_frames,
                             pack_reply, recv_frame, send_frame)
from ..broker.requests import decode
from ..core.janus import JanusAQP
from ..core.persist import _MANIFEST, load_shard
from ..core.placement import stagger_trigger
from ..core.routing import ShardSummary
from ..obs.trace import encode_spans

__all__ = ["ShardWorker", "main"]


class ShardWorker:
    """The worker-side frame loop around one warm-started shard."""

    def __init__(self, sock: socket.socket, shard: JanusAQP,
                 shard_id: int, n_shards: int, n_bins: int) -> None:
        self.sock = sock
        self.shard = shard
        self.shard_id = int(shard_id)
        self.n_shards = int(n_shards)
        self.n_bins = int(n_bins)
        schema = shard.table.schema
        self.pred_cols = np.array(
            [schema.index(a) for a in shard.predicate_attrs],
            dtype=np.intp)
        self.n_requests = 0
        # Span ids must be unique within a trace yet never collide
        # with the coordinator's small sequential ids; salt a high
        # base with the worker pid (see repro.obs.trace).
        self._span_base = ((os.getpid() & 0xFFFF) | 0x10000) << 32
        self._span_seq = 0

    # ------------------------------------------------------------------ #
    # frame loop
    # ------------------------------------------------------------------ #
    def run(self) -> None:
        """Serve frames until SHUTDOWN or the coordinator goes away."""
        while True:
            try:
                opcode, meta, payload, trace_id, span = \
                    recv_frame(self.sock)
            except (EOFError, OSError):
                return              # coordinator closed the pair: exit
            self.n_requests += 1
            if opcode == OP_SHUTDOWN:
                self._reply_ok()
                return
            try:
                self._dispatch(opcode, meta, payload, trace_id, span)
            except Exception as exc:
                # Application errors (off-template query, dead local
                # tid) go back as typed ERR frames for the coordinator
                # to re-raise; the loop itself stays up.
                send_frame(self.sock, OP_ERR, 0,
                           [f"{type(exc).__name__}\n{exc}".encode()])

    def _dispatch(self, opcode: int, meta: int, payload,
                  trace_id: int = 0, parent_span: int = 0) -> None:
        if opcode == OP_PING:
            self._reply_ok()
        elif opcode == OP_INSERT:
            self._handle_insert(meta, payload)
        elif opcode == OP_DELETE:
            self._handle_delete(payload)
        elif opcode == OP_QUERY:
            self._handle_query(payload, trace_id, parent_span)
        elif opcode == OP_REOPT:
            self._handle_reopt()
        elif opcode == OP_SUMMARY:
            send_frame(self.sock, OP_OK, 1,
                       pack_reply(self.shard.data_epoch,
                                  [self._summary_npz()]))
        elif opcode == OP_STATS:
            self._handle_stats()
        else:
            raise ValueError(f"unknown opcode {opcode}")

    def _reply_ok(self) -> None:
        send_frame(self.sock, OP_OK, 0,
                   pack_reply(self.shard.data_epoch))

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #
    def _handle_insert(self, n_cols: int, payload) -> None:
        """Raw f64 row block in, local tids + repartition flag out.

        Replays the in-process coordinator's ingest closure exactly:
        insert, lazy first build with the staggered trigger offset,
        and a flag telling the coordinator whether the batch tripped a
        repartition (its summary upkeep branches on it).
        """
        rows = np.frombuffer(payload, dtype="<f8").reshape(-1, n_cols)
        reparts = self.shard.n_repartitions
        local = self.shard.insert_many(rows)
        if self.shard.dpt is None:
            self.shard.initialize()
            stagger_trigger(self.shard, self.shard_id, self.n_shards)
        flag = int(self.shard.n_repartitions != reparts)
        send_frame(self.sock, OP_OK, flag,
                   pack_reply(self.shard.data_epoch,
                              [np.asarray(local, dtype=np.int64)]))

    def _handle_delete(self, payload) -> None:
        """Raw i64 local tids in, the dying rows' predicate coords out.

        The coordinator maintains this shard's routing summary; it
        needs the predicate coordinates of the deleted rows to uncount
        them, and only this process still has the rows.  They are
        captured *before* the delete - afterwards the slots are dead.
        """
        local = np.frombuffer(payload, dtype="<i8")
        coords = np.ascontiguousarray(
            self.shard.table.rows_for(local)[:, self.pred_cols])
        self.shard.delete_many(local)
        send_frame(self.sock, OP_OK, 0,
                   pack_reply(self.shard.data_epoch, [coords]))

    def _handle_reopt(self) -> None:
        """Re-optimize and ship the post-rebuild exact summary."""
        if self.shard.dpt is None:
            send_frame(self.sock, OP_OK, 0,
                       pack_reply(self.shard.data_epoch))
            return
        self.shard.reoptimize()
        send_frame(self.sock, OP_OK, 1,
                   pack_reply(self.shard.data_epoch,
                              [self._summary_npz()]))

    # ------------------------------------------------------------------ #
    # queries and introspection
    # ------------------------------------------------------------------ #
    def _handle_query(self, payload, trace_id: int = 0,
                      parent_span: int = 0) -> None:
        """Broker-codec query records in, a RESULT_DTYPE block out.

        Answers that carry sketch blobs (the sketch aggregates) append
        a variable-length sidecar after the fixed block; the reply meta
        still counts results, so the coordinator knows where the fixed
        block ends.  A traced request (``trace_id != 0``) additionally
        appends a JSON span sidecar and reports its byte length in the
        reply header's ``span`` field - the coordinator strips it
        before decoding and grafts the spans under its own
        ``shard_execute`` span.
        """
        records = bytes(payload).decode("utf-8").split("\n")
        queries = [decode(r).query for r in records]
        t0 = time.perf_counter()
        results = self.shard.query_many(queries)
        span_block = b""
        if trace_id:
            self._span_seq += 1
            span_block = encode_spans([{
                "id": self._span_base + self._span_seq,
                "parent": parent_span or None,
                "name": "worker_execute",
                "start_us": 0,
                "dur_us": int((time.perf_counter() - t0) * 1e6),
                "tags": {"shard": self.shard_id, "pid": os.getpid(),
                         "n_queries": len(queries)},
            }])
        send_frame(self.sock, OP_OK, len(results),
                   pack_reply(self.shard.data_epoch,
                              [encode_result_block(results),
                               encode_sketch_block(
                                   extract_sketch_frames(results)),
                               span_block]),
                   trace_id=trace_id, span=len(span_block))

    def _summary_npz(self) -> bytes:
        """A fresh exact routing summary, as npz bytes.

        :meth:`~repro.core.routing.ShardSummary.refresh` fully
        re-derives every field from the live rows, so this stateless
        rebuild is identical to the in-place refresh the in-process
        coordinator performs.
        """
        summary = ShardSummary(len(self.pred_cols), self.n_bins)
        summary.refresh(
            self.shard.table.live_rows()[:, self.pred_cols])
        buf = io.BytesIO()
        np.savez(buf, **summary.state_arrays())
        return buf.getvalue()

    def _handle_stats(self) -> None:
        stats = {
            "shard_id": self.shard_id,
            "n_live": len(self.shard.table),
            "pool_size": self.shard.pool_size,
            "n_repartitions": self.shard.n_repartitions,
            "data_epoch": self.shard.data_epoch,
            "n_requests": self.n_requests,
        }
        send_frame(self.sock, OP_OK, 0,
                   pack_reply(self.shard.data_epoch,
                              [json.dumps(stats).encode()]))


def serve(fd: int, snapshot: str, shard_id: int) -> None:
    """Warm-start shard ``shard_id`` and serve frames on ``fd``."""
    with np.load(Path(snapshot) / _MANIFEST,
                 allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        n_bins = int(archive[f"summary{shard_id}_meta"][1])
    shard = load_shard(snapshot, shard_id)
    sock = socket.socket(fileno=fd)
    try:
        ShardWorker(sock, shard, shard_id,
                    int(meta["n_shards"]), n_bins).run()
    finally:
        sock.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="fleet worker: serve one warm-started shard over "
                    "an inherited socket (internal; spawned by the "
                    "fleet coordinator)")
    parser.add_argument("--fd", type=int, required=True,
                        help="inherited socketpair file descriptor")
    parser.add_argument("--snapshot", required=True,
                        help="save_sharded snapshot directory")
    parser.add_argument("--shard", type=int, required=True,
                        help="shard index this worker owns")
    args = parser.parse_args(argv)
    serve(args.fd, args.snapshot, args.shard)
    return 0


if __name__ == "__main__":
    sys.exit(main())
