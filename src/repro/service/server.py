"""Asyncio HTTP/JSON AQP server fronting a synopsis engine.

:class:`AQPServer` is the client-facing tier of the system: a
stdlib-only HTTP/1.1 server (``asyncio`` streams plus a minimal codec -
request line, headers, ``Content-Length`` body, keep-alive) that routes
requests into the batched engine lane built by PRs 1-4.  One server
fronts one engine - a :class:`~repro.core.janus.JanusAQP`, a
:class:`~repro.core.sharded.ShardedJanusAQP` fleet, or anything else
exposing ``insert_many`` / ``delete_many`` / ``query_many`` /
``data_epoch`` and the template attributes.

Request flow for reads::

    /sql ──► sqlfront.compile_sql ─┐
    /query ── query_from_dict ─────┤
                                   ▼
                        ResultCache.lookup(query, engine.data_epoch)
                          │ hit: answered with zero synopsis traffic
                          ▼ miss
                        MicroBatcher.submit_many
                          │ coalesces every in-flight request
                          ▼
                        engine.query_many(batch)   (executor thread)
                          │ epoch unchanged across the call?
                          ▼
                        ResultCache.store + respond

Writes (``/insert`` / ``/delete``) run straight to the engine's batch
API in the executor and bump ``data_epoch``, which structurally
invalidates every cached answer.  ``/stats`` and ``/metrics`` expose
engine, batcher and cache counters (JSON and Prometheus text form).

JSON payloads may carry ``Infinity``/``NaN`` literals (Python's
``json`` emits and parses them); rectangle bounds are typically
infinite on unconstrained dimensions.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..broker.requests import query_from_dict, result_to_dict
from ..core.queries import SKETCH_AGGS, AggFunc, Query, QueryResult
from ..sketch.registry import SKETCH_KEY, sketch_from_bytes
from .batcher import MicroBatcher
from .cache import ResultCache
from .fleet import FleetUnavailableError
from .sqlfront import SQLError, compile_sql

__all__ = ["AQPServer", "ServiceHandle", "serve_background"]

_MAX_BODY = 64 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024       # total across one request's headers


class _HTTPError(Exception):
    """Maps to an error response without tearing the connection down."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 413: "Payload Too Large",
                431: "Request Header Fields Too Large",
                500: "Internal Server Error",
                503: "Service Unavailable"}


class AQPServer:
    """HTTP/JSON front-end over one synopsis engine.

    Parameters
    ----------
    engine:
        The synopsis to serve.  Must expose ``insert_many`` /
        ``delete_many`` / ``query_many``, a monotone ``data_epoch``,
        and the template surface (``agg_attr``, ``predicate_attrs``)
        used to bind SQL statements.
    host, port:
        Bind address; port 0 picks an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    max_batch, max_linger_ms:
        Micro-batching knobs (see :class:`~repro.service.batcher.
        MicroBatcher`).
    cache_size, cache_enabled:
        Per-template LRU capacity of the epoch-tagged result cache;
        disabling it makes served answers bit-identical to in-process
        ``query_many`` (the end-to-end test's mode).
    executor_workers:
        Threads executing engine calls; the engine's own locks
        serialize what must be serialized.
    idle_timeout:
        Seconds a connection may sit between requests before the
        server closes it (bounds slowloris-style fd exhaustion).
    """

    def __init__(self, engine, host: str = "127.0.0.1", port: int = 0,
                 max_batch: int = 64, max_linger_ms: float = 2.0,
                 cache_size: int = 256, cache_enabled: bool = True,
                 executor_workers: int = 4,
                 idle_timeout: float = 120.0) -> None:
        self.engine = engine
        self._host = host
        self._port = port
        self._idle_timeout = idle_timeout
        self._max_batch = max_batch
        self._max_linger_ms = max_linger_ms
        self.cache = ResultCache(per_template=cache_size,
                                 enabled=cache_enabled)
        self._executor_workers = executor_workers
        self._executor: Optional[ThreadPoolExecutor] = \
            ThreadPoolExecutor(max_workers=executor_workers,
                               thread_name_prefix="janus-service")
        self.batcher: Optional[MicroBatcher] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set = set()
        self._started_at = 0.0
        self.request_counts: Dict[str, int] = {}
        self.n_bad_requests = 0
        self._routes = {
            ("GET", "/health"): self._handle_health,
            ("GET", "/stats"): self._handle_stats,
            ("GET", "/metrics"): self._handle_metrics,
            ("POST", "/query"): self._handle_query,
            ("POST", "/sql"): self._handle_sql,
            ("POST", "/insert"): self._handle_insert,
            ("POST", "/delete"): self._handle_delete,
        }
        self._known_paths = frozenset(p for _, p in self._routes)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when 0)."""
        return self._port

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``.

        A stopped server can be started again (the engine executor is
        recreated; a port of 0 binds a fresh ephemeral port).
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._executor is None:      # restarted after stop()
            self._executor = ThreadPoolExecutor(
                max_workers=self._executor_workers,
                thread_name_prefix="janus-service")
        self.batcher = MicroBatcher(
            self._engine_execute, max_batch=self._max_batch,
            max_linger_ms=self._max_linger_ms, executor=self._executor)
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port)
        self._port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        return self._host, self._port

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, release threads.

        Connection tasks wind down *before* the batcher closes, so a
        keep-alive request racing the shutdown is cut off at the
        connection instead of surfacing a spurious 500 from a
        closed batcher.
        """
        if self._server is None:
            return
        self._server.close()
        # Cancel connection handlers BEFORE wait_closed(): on Python
        # 3.12.1+ wait_closed blocks until every connection transport
        # is gone, so an idle keep-alive client parked in readline()
        # would hang the shutdown forever if cancelled after.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        await self._server.wait_closed()
        self._server = None
        if self.batcher is not None:
            await self.batcher.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI entry point's main loop)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------ #
    # engine lane
    # ------------------------------------------------------------------ #
    def _engine_execute(self, queries: List[Query]) -> List[QueryResult]:
        """One micro-batch through the engine (runs in the executor).

        The epoch is read on both sides of the call: results are
        admitted to the cache only when no write interleaved, keyed by
        the epoch they provably belong to.
        """
        epoch_before = self.engine.data_epoch
        results = self.engine.query_many(queries)
        epoch_after = self.engine.data_epoch
        for query, result in zip(queries, results):
            self.cache.store(query, result, epoch_before, epoch_after)
        return results

    def _validate_queries(self, queries: List[Query]) -> None:
        """Reject off-template queries before they reach the batcher.

        A query the engine cannot answer would otherwise fail the whole
        micro-batch it rides in; binding errors must surface as this
        request's 400, never as a co-batched neighbour's failure.
        """
        pred_attrs = tuple(self.engine.predicate_attrs)
        stat_attrs = getattr(self.engine, "stat_attrs", None)
        sketch_attrs = tuple(getattr(self.engine, "sketch_attrs", ()))
        for query in queries:
            if query.predicate_attrs != pred_attrs:
                raise _HTTPError(
                    400, f"predicate attributes "
                         f"{list(query.predicate_attrs)} do not match "
                         f"this synopsis (template: {list(pred_attrs)})")
            if query.agg in SKETCH_AGGS:
                if query.attr not in sketch_attrs:
                    raise _HTTPError(
                        400, f"no {query.agg.value} sketch is "
                             f"maintained for column {query.attr!r} "
                             f"(sketched: {list(sketch_attrs)})")
                if not all(lo == float("-inf") and hi == float("inf")
                           for lo, hi in zip(query.rect.lo,
                                             query.rect.hi)):
                    raise _HTTPError(
                        400, f"{query.agg.value} is answered from a "
                             f"whole-column sketch and cannot take "
                             f"predicate bounds")
                continue
            if stat_attrs is not None and \
                    query.agg is not AggFunc.COUNT and \
                    query.attr not in stat_attrs:
                raise _HTTPError(
                    400, f"aggregation column {query.attr!r} is not "
                         f"tracked by this synopsis (tracked: "
                         f"{list(stat_attrs)})")

    async def _answer(self, queries: List[Query]) -> Tuple[List[dict],
                                                           List[bool]]:
        """Cache lookups first, the misses through the batcher."""
        self._validate_queries(queries)
        results: List[Optional[QueryResult]] = [None] * len(queries)
        cached = [False] * len(queries)
        misses: List[int] = []
        epoch = self.engine.data_epoch
        for i, query in enumerate(queries):
            hit = self.cache.lookup(query, epoch)
            if hit is not None:
                results[i] = hit
                cached[i] = True
            else:
                misses.append(i)
        if misses:
            answered = await self.batcher.submit_many(
                [queries[i] for i in misses])
            for i, result in zip(misses, answered):
                results[i] = result
        payloads = [result_to_dict(r) for r in results]
        for i, query in enumerate(queries):
            # TOPK clients want the members, not just the covered mass;
            # the item list rides next to the standard envelope (decoded
            # from the answer's own sketch blob, so it is exactly the
            # state the estimate came from).
            if query.agg is AggFunc.TOPK:
                blob = results[i].details.get(SKETCH_KEY)
                if blob is not None:
                    sketch = sketch_from_bytes(blob)
                    payloads[i]["topk"] = [
                        [float(value), int(count)] for value, count
                        in sketch.top(int(query.param))]
        return payloads, cached

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    async def _route(self, method: str, path: str, body: bytes) -> dict:
        path = path.split("?", 1)[0]
        handler = self._routes.get((method, path))
        if handler is None:
            if path in self._known_paths:
                raise _HTTPError(405, f"method {method} not allowed "
                                      f"for {path}")
            raise _HTTPError(404, f"unknown route {path}")
        self.request_counts[path] = self.request_counts.get(path, 0) + 1
        payload = None
        if method == "POST":
            if len(body) > 256 * 1024:
                # Decoding a large body inline would stall the event
                # loop (and every other connection's latency with it).
                payload = await asyncio.get_running_loop() \
                    .run_in_executor(self._executor, self._json_body,
                                     body)
            else:
                payload = self._json_body(body)
        return await handler(payload)

    @staticmethod
    def _json_body(body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HTTPError(400, "body must be a JSON object")
        return payload

    async def _handle_health(self, _payload) -> dict:
        fleet_health = getattr(self.engine, "fleet_health", None)
        if fleet_health is None:
            return {"status": "ok"}
        # Fleet engines report per-worker liveness; a fleet with a
        # dead worker still serves routable queries but is "degraded"
        # until the supervisor's restart lands.
        return fleet_health()

    async def _handle_query(self, payload: dict) -> dict:
        if "queries" in payload:
            raw = payload["queries"]
            single = False
        elif "query" in payload:
            raw = [payload["query"]]
            single = True
        else:
            raise _HTTPError(400, "expected 'query' or 'queries'")
        if not isinstance(raw, list):
            raise _HTTPError(400, "'queries' must be a list")
        try:
            queries = [query_from_dict(q) for q in raw]
        except ValueError as exc:
            raise _HTTPError(400, str(exc)) from exc
        results, cached = await self._answer(queries)
        if single:
            return {"result": results[0], "cached": cached[0]}
        return {"results": results, "cached": cached}

    async def _handle_sql(self, payload: dict) -> dict:
        if "sql" not in payload:
            raise _HTTPError(400, "expected 'sql'")
        raw = payload["sql"]
        single = isinstance(raw, str)
        statements = [raw] if single else raw
        if not isinstance(statements, list) or \
                not all(isinstance(s, str) for s in statements):
            raise _HTTPError(400, "'sql' must be a string or a list "
                                  "of strings")
        try:
            queries = [compile_sql(s, self.engine.agg_attr,
                                   self.engine.predicate_attrs,
                                   stat_attrs=getattr(self.engine,
                                                      "stat_attrs",
                                                      None))
                       for s in statements]
        except SQLError as exc:
            raise _HTTPError(400, str(exc)) from exc
        results, cached = await self._answer(queries)
        if single:
            return {"result": results[0], "cached": cached[0]}
        return {"results": results, "cached": cached}

    def _decode_and_insert(self, raw) -> List[int]:
        """Array conversion, validation and ingest, off the loop."""
        try:
            rows = np.asarray(raw, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _HTTPError(400, f"bad rows: {exc}") from exc
        if rows.size and rows.ndim != 2:
            raise _HTTPError(400, "rows must be a list of equal-length "
                                  "numeric lists")
        if rows.size and not np.isfinite(rows).all():
            # One NaN row would poison SUM/AVG delta statistics for
            # every client (and a later delete cannot heal nan - nan);
            # the trust boundary rejects it before the engine sees it.
            raise _HTTPError(400, "rows must contain only finite "
                                  "values")
        try:
            return self.engine.insert_many(rows)
        except ValueError as exc:
            raise _HTTPError(400, str(exc)) from exc

    async def _handle_insert(self, payload: dict) -> dict:
        if "rows" not in payload:
            raise _HTTPError(400, "expected 'rows'")
        loop = asyncio.get_running_loop()
        tids = await loop.run_in_executor(
            self._executor, self._decode_and_insert, payload["rows"])
        return {"tids": [int(t) for t in tids],
                "epoch": int(self.engine.data_epoch)}

    async def _handle_delete(self, payload: dict) -> dict:
        if "tids" not in payload:
            raise _HTTPError(400, "expected 'tids'")
        try:
            tids = [int(t) for t in payload["tids"]]
        except (TypeError, ValueError) as exc:
            raise _HTTPError(400, f"bad tids: {exc}") from exc
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(
                self._executor, self.engine.delete_many, tids)
        except KeyError as exc:
            raise _HTTPError(400, f"delete failed: {exc}") from exc
        return {"deleted": len(tids),
                "epoch": int(self.engine.data_epoch)}

    async def _handle_stats(self, _payload) -> dict:
        engine = self.engine
        stats = {
            "engine": {
                "rows": len(engine.table),
                "pool_size": engine.pool_size,
                "data_epoch": int(engine.data_epoch),
            },
            "batcher": self.batcher.stats.to_dict(),
            "cache": dict(self.cache.stats.to_dict(),
                          enabled=self.cache.enabled,
                          entries=len(self.cache)),
            "requests": dict(self.request_counts),
            "n_bad_requests": self.n_bad_requests,
            "uptime_seconds": time.time() - self._started_at,
        }
        n_shards = getattr(engine, "n_shards", None)
        if n_shards is not None:
            stats["engine"]["n_shards"] = n_shards
            stats["engine"]["shard_sizes"] = engine.shard_sizes()
        if hasattr(engine, "routing_stats"):
            stats["engine"]["routing"] = engine.routing_stats()
        fleet_stats = getattr(engine, "fleet_stats", None)
        if fleet_stats is not None:
            stats["engine"]["fleet"] = fleet_stats()
        return stats

    async def _handle_metrics(self, _payload) -> dict:
        b = self.batcher.stats
        c = self.cache.stats
        lines = [
            "# TYPE janus_service_uptime_seconds gauge",
            f"janus_service_uptime_seconds "
            f"{time.time() - self._started_at:.3f}",
            "# TYPE janus_service_engine_rows gauge",
            f"janus_service_engine_rows {len(self.engine.table)}",
            "# TYPE janus_service_engine_data_epoch counter",
            f"janus_service_engine_data_epoch "
            f"{int(self.engine.data_epoch)}",
            "# TYPE janus_service_batches_total counter",
            f"janus_service_batches_total {b.n_batches}",
            "# TYPE janus_service_batched_queries_total counter",
            f"janus_service_batched_queries_total {b.n_queries}",
            "# TYPE janus_service_batch_max_size gauge",
            f"janus_service_batch_max_size {b.max_batch_size}",
            "# TYPE janus_service_cache_hits_total counter",
            f"janus_service_cache_hits_total {c.hits}",
            "# TYPE janus_service_cache_misses_total counter",
            f"janus_service_cache_misses_total {c.misses}",
            "# TYPE janus_service_bad_requests_total counter",
            f"janus_service_bad_requests_total {self.n_bad_requests}",
        ]
        routing = getattr(self.engine, "routing_stats", None)
        if routing is not None:
            r = routing()
            lines += [
                "# TYPE janus_service_routed_queries_total counter",
                f"janus_service_routed_queries_total "
                f"{r['n_routed_queries']}",
                "# TYPE janus_service_broadcast_queries_total counter",
                f"janus_service_broadcast_queries_total "
                f"{r['n_broadcast_queries']}",
                "# TYPE janus_service_pruned_shard_queries_total counter",
                f"janus_service_pruned_shard_queries_total "
                f"{r['n_pruned_shard_queries']}",
                "# TYPE janus_service_mean_shards_touched gauge",
                f"janus_service_mean_shards_touched "
                f"{r['mean_shards_touched']:.4f}",
                "# TYPE janus_service_shards_touched_total counter",
            ]
            for k, count in enumerate(r["shards_touched_hist"]):
                lines.append(f'janus_service_shards_touched_total'
                             f'{{shards="{k}"}} {count}')
        fleet_stats = getattr(self.engine, "fleet_stats", None)
        if fleet_stats is not None:
            f = fleet_stats()
            n_alive = sum(1 for w in f["workers"].values() if w["alive"])
            lines += [
                "# TYPE janus_service_workers gauge",
                f"janus_service_workers {f['n_workers']}",
                "# TYPE janus_service_workers_alive gauge",
                f"janus_service_workers_alive {n_alive}",
                "# TYPE janus_service_worker_requests_total counter",
                "# TYPE janus_service_worker_bytes_sent_total counter",
                "# TYPE janus_service_worker_bytes_received_total "
                "counter",
                "# TYPE janus_service_worker_restarts_total counter",
                "# TYPE janus_service_worker_p50_seconds gauge",
            ]
            for wid, w in sorted(f["workers"].items()):
                lines += [
                    f'janus_service_worker_requests_total'
                    f'{{worker="{wid}"}} {w["requests"]}',
                    f'janus_service_worker_bytes_sent_total'
                    f'{{worker="{wid}"}} {w["bytes_sent"]}',
                    f'janus_service_worker_bytes_received_total'
                    f'{{worker="{wid}"}} {w["bytes_received"]}',
                    f'janus_service_worker_restarts_total'
                    f'{{worker="{wid}"}} {w["restarts"]}',
                    f'janus_service_worker_p50_seconds'
                    f'{{worker="{wid}"}} {w["p50_seconds"]:.6f}',
                ]
        for route, count in sorted(self.request_counts.items()):
            lines.append(f'janus_service_requests_total'
                         f'{{route="{route}"}} {count}')
        return {"__raw__": "\n".join(lines) + "\n"}

    # ------------------------------------------------------------------ #
    # HTTP codec
    # ------------------------------------------------------------------ #
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    # The idle timeout bounds parked connections: a
                    # client that connects (or keeps alive) and never
                    # sends a request must not hold a task and an fd
                    # forever.
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self._idle_timeout)
                except asyncio.TimeoutError:
                    break
                except _HTTPError as exc:
                    # A request we could not even parse still deserves
                    # a response; the connection closes after it since
                    # the stream position is unreliable.
                    self.n_bad_requests += 1
                    self._write_response(writer, exc.status,
                                         {"error": str(exc)}, False)
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, version, headers, body = request
                keep_alive = (version != "HTTP/1.0" and
                              headers.get("connection", "") != "close")
                try:
                    payload = await self._route(method, path, body)
                    status = 200
                except _HTTPError as exc:
                    payload = {"error": str(exc)}
                    status = exc.status
                    self.n_bad_requests += 1
                except FleetUnavailableError as exc:
                    # A fleet worker is down and the query needs its
                    # shard: refuse explicitly rather than answer
                    # wrong; the fleet self-heals, clients retry.
                    payload = {"error": str(exc), "retryable": True}
                    status = 503
                    self.n_bad_requests += 1
                except Exception as exc:    # engine-side failure
                    payload = {"error": f"{type(exc).__name__}: {exc}"}
                    status = 500
                    self.n_bad_requests += 1
                self._write_response(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                asyncio.CancelledError, _HTTPError):
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; ``None`` at a clean connection close."""
        try:
            line = await reader.readline()
        except ValueError:      # request line over the stream limit
            raise _HTTPError(400, "request line too long") from None
        except ConnectionResetError:
            return None
        if not line:
            return None
        try:
            method, path, version = \
                line.decode("latin-1").strip().split(" ", 2)
        except ValueError:
            raise _HTTPError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                line = await reader.readline()
            except ValueError:  # a header over the stream limit
                raise _HTTPError(400, "header line too long") from None
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                # One connection must not grow server memory without
                # bound by streaming headers forever.
                raise _HTTPError(431, "request headers too large")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _HTTPError(400, f"bad Content-Length "
                                  f"{raw_length!r}") from None
        if length < 0:
            raise _HTTPError(400, f"bad Content-Length {raw_length!r}")
        if length > _MAX_BODY:
            raise _HTTPError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, version, headers, body

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        payload: dict, keep_alive: bool) -> None:
        if "__raw__" in payload:            # /metrics text exposition
            body = payload["__raw__"].encode("utf-8")
            content_type = "text/plain; version=0.0.4"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n")
        writer.write(head.encode("latin-1") + body)


# ---------------------------------------------------------------------- #
# background serving for synchronous callers (tests, benchmarks, examples)
# ---------------------------------------------------------------------- #
class ServiceHandle:
    """A running server on a private event-loop thread.

    ``host``/``port`` are live once :func:`serve_background` returns;
    :meth:`stop` shuts the server down gracefully and joins the thread.
    The underlying :class:`AQPServer` is exposed as :attr:`server` for
    stats inspection (its counters are plain ints, safe to read).
    """

    def __init__(self, server: AQPServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread,
                 stop_event: asyncio.Event) -> None:
        self.server = server
        self.host = server.host
        self.port = server.port
        self._loop = loop
        self._thread = thread
        self._stop_event = stop_event

    def stop(self) -> None:
        if not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_background(engine, **kwargs) -> ServiceHandle:
    """Start an :class:`AQPServer` on a daemon thread and wait for bind.

    Keyword arguments are forwarded to :class:`AQPServer`.  Returns a
    :class:`ServiceHandle` whose ``port`` is resolved (pass ``port=0``
    for an ephemeral one).  Startup errors re-raise in the caller.
    """
    started = threading.Event()
    box: dict = {}

    async def main() -> None:
        server = AQPServer(engine, **kwargs)
        stop_event = asyncio.Event()
        try:
            await server.start()
        except Exception as exc:            # surface bind errors
            box["error"] = exc
            started.set()
            return
        box["server"] = server
        box["loop"] = asyncio.get_running_loop()
        box["stop_event"] = stop_event
        started.set()
        await stop_event.wait()
        await server.stop()

    thread = threading.Thread(target=lambda: asyncio.run(main()),
                              name="janus-service", daemon=True)
    thread.start()
    started.wait(timeout=30)
    if "error" in box:
        raise box["error"]
    if "server" not in box:
        raise RuntimeError("service failed to start within 30s")
    return ServiceHandle(box["server"], box["loop"], thread,
                         box["stop_event"])
