"""Asyncio HTTP/JSON AQP server fronting a synopsis engine.

:class:`AQPServer` is the client-facing tier of the system: a
stdlib-only HTTP/1.1 server (``asyncio`` streams plus a minimal codec -
request line, headers, ``Content-Length`` body, keep-alive) that routes
requests into the batched engine lane built by PRs 1-4.  One server
fronts one engine - a :class:`~repro.core.janus.JanusAQP`, a
:class:`~repro.core.sharded.ShardedJanusAQP` fleet, or anything else
exposing ``insert_many`` / ``delete_many`` / ``query_many`` /
``data_epoch`` and the template attributes.

Request flow for reads::

    /sql ──► sqlfront.compile_sql ─┐
    /query ── query_from_dict ─────┤
                                   ▼
                        ResultCache.lookup(query, engine.data_epoch)
                          │ hit: answered with zero synopsis traffic
                          ▼ miss
                        MicroBatcher.submit_many
                          │ coalesces every in-flight request
                          ▼
                        engine.query_many(batch)   (executor thread)
                          │ epoch unchanged across the call?
                          ▼
                        ResultCache.store + respond

Writes (``/insert`` / ``/delete``) run straight to the engine's batch
API in the executor and bump ``data_epoch``, which structurally
invalidates every cached answer.  ``/stats`` and ``/metrics`` expose
engine, batcher and cache counters (JSON and Prometheus text form);
the text exposition is rendered from the shared
:class:`~repro.obs.metrics.MetricsRegistry` (one consistent
``janus_*`` namespace across service, engine and fleet registries).

Observability: a :class:`~repro.obs.trace.Tracer` samples 1-in-N
requests (or every request carrying an ``X-Janus-Trace`` header, or
``"explain": true``); a sampled read collects spans across parse,
admission, cache lookup, routing plan, per-shard execute and merge,
and the completed trace lands in the ring served by
``GET /debug/traces``.  Traced reads bypass the micro-batcher (their
admission span measures the executor queue wait instead) - answers
are bit-identical either way because batched == sequential is pinned
by the engine.  ``slow_query_ms`` turns reads over the threshold into
one-line JSON log events.

JSON payloads may carry ``Infinity``/``NaN`` literals (Python's
``json`` emits and parses them); rectangle bounds are typically
infinite on unconstrained dimensions.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..broker.requests import query_from_dict, result_to_dict
from ..core.queries import SKETCH_AGGS, AggFunc, Query, QueryResult
from ..obs.logs import log_event
from ..obs.metrics import MetricsRegistry, render_exposition
from ..obs.trace import TraceContext, Tracer
from ..sketch.registry import SKETCH_KEY, sketch_from_bytes
from .batcher import MicroBatcher
from .cache import ResultCache
from .fleet import FleetUnavailableError
from .sqlfront import SQLError, compile_sql

__all__ = ["AQPServer", "ServiceHandle", "serve_background"]

_MAX_BODY = 64 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024       # total across one request's headers


class _HTTPError(Exception):
    """Maps to an error response without tearing the connection down."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 413: "Payload Too Large",
                431: "Request Header Fields Too Large",
                500: "Internal Server Error",
                503: "Service Unavailable"}


class AQPServer:
    """HTTP/JSON front-end over one synopsis engine.

    Parameters
    ----------
    engine:
        The synopsis to serve.  Must expose ``insert_many`` /
        ``delete_many`` / ``query_many``, a monotone ``data_epoch``,
        and the template surface (``agg_attr``, ``predicate_attrs``)
        used to bind SQL statements.
    host, port:
        Bind address; port 0 picks an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    max_batch, max_linger_ms:
        Micro-batching knobs (see :class:`~repro.service.batcher.
        MicroBatcher`).
    cache_size, cache_enabled:
        Per-template LRU capacity of the epoch-tagged result cache;
        disabling it makes served answers bit-identical to in-process
        ``query_many`` (the end-to-end test's mode).
    executor_workers:
        Threads executing engine calls; the engine's own locks
        serialize what must be serialized.
    idle_timeout:
        Seconds a connection may sit between requests before the
        server closes it (bounds slowloris-style fd exhaustion).
    trace_sample, trace_capacity:
        Trace 1-in-``trace_sample`` read requests (0 disables; forced
        traces always run) and keep the last ``trace_capacity``
        completed traces for ``/debug/traces``.
    slow_query_ms:
        When set, any ``/query`` / ``/sql`` request slower than this
        many milliseconds is counted and logged as a structured
        one-line JSON event.
    log_stream:
        Destination for structured log events (default: stderr).
    """

    def __init__(self, engine, host: str = "127.0.0.1", port: int = 0,
                 max_batch: int = 64, max_linger_ms: float = 2.0,
                 cache_size: int = 256, cache_enabled: bool = True,
                 executor_workers: int = 4,
                 idle_timeout: float = 120.0,
                 trace_sample: int = 64, trace_capacity: int = 256,
                 slow_query_ms: Optional[float] = None,
                 log_stream=None) -> None:
        self.engine = engine
        self._host = host
        self._port = port
        self._idle_timeout = idle_timeout
        self._max_batch = max_batch
        self._max_linger_ms = max_linger_ms
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(sample_every=trace_sample,
                             capacity=trace_capacity)
        self.slow_query_ms = slow_query_ms
        self._log_stream = log_stream
        self.cache = ResultCache(per_template=cache_size,
                                 enabled=cache_enabled,
                                 metrics=self.metrics)
        self._executor_workers = executor_workers
        self._executor: Optional[ThreadPoolExecutor] = \
            ThreadPoolExecutor(max_workers=executor_workers,
                               thread_name_prefix="janus-service")
        self.batcher: Optional[MicroBatcher] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set = set()
        self._started_at = 0.0
        self._route_counters: Dict[str, object] = {}
        self._route_hists: Dict[str, object] = {}
        self._c_bad = self.metrics.counter(
            "janus_service_bad_requests_total")
        self._c_slow = self.metrics.counter(
            "janus_service_slow_queries_total")
        self._c_traces = self.metrics.counter(
            "janus_service_traces_total")
        self._c_explain = self.metrics.counter(
            "janus_service_explain_requests_total")
        self._g_uptime = self.metrics.gauge(
            "janus_service_uptime_seconds")
        self._g_rows = self.metrics.gauge("janus_service_engine_rows")
        self._c_epoch = self.metrics.counter(
            "janus_service_engine_data_epoch")
        # Does the engine's query_many take the trace context?  Probed
        # once: stand-in engines in tests may not.
        try:
            self._engine_takes_obs = "obs" in inspect.signature(
                self.engine.query_many).parameters
        except (TypeError, ValueError):
            self._engine_takes_obs = False
        self._routes = {
            ("GET", "/health"): self._handle_health,
            ("GET", "/stats"): self._handle_stats,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/debug/traces"): self._handle_traces,
            ("POST", "/query"): self._handle_query,
            ("POST", "/sql"): self._handle_sql,
            ("POST", "/insert"): self._handle_insert,
            ("POST", "/delete"): self._handle_delete,
        }
        self._known_paths = frozenset(p for _, p in self._routes)

    @property
    def request_counts(self) -> Dict[str, int]:
        """Requests served by route (reads the registry counters)."""
        return {route: int(c.value)
                for route, c in self._route_counters.items()}

    @property
    def n_bad_requests(self) -> int:
        return int(self._c_bad.value)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when 0)."""
        return self._port

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``.

        A stopped server can be started again (the engine executor is
        recreated; a port of 0 binds a fresh ephemeral port).
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._executor is None:      # restarted after stop()
            self._executor = ThreadPoolExecutor(
                max_workers=self._executor_workers,
                thread_name_prefix="janus-service")
        self.batcher = MicroBatcher(
            self._engine_execute, max_batch=self._max_batch,
            max_linger_ms=self._max_linger_ms, executor=self._executor,
            metrics=self.metrics)
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port)
        self._port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        return self._host, self._port

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, release threads.

        Connection tasks wind down *before* the batcher closes, so a
        keep-alive request racing the shutdown is cut off at the
        connection instead of surfacing a spurious 500 from a
        closed batcher.
        """
        if self._server is None:
            return
        self._server.close()
        # Cancel connection handlers BEFORE wait_closed(): on Python
        # 3.12.1+ wait_closed blocks until every connection transport
        # is gone, so an idle keep-alive client parked in readline()
        # would hang the shutdown forever if cancelled after.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        await self._server.wait_closed()
        self._server = None
        if self.batcher is not None:
            await self.batcher.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI entry point's main loop)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------ #
    # engine lane
    # ------------------------------------------------------------------ #
    def _engine_execute(self, queries: List[Query],
                        ctx: Optional[TraceContext] = None
                        ) -> List[QueryResult]:
        """One micro-batch through the engine (runs in the executor).

        The epoch is read on both sides of the call: results are
        admitted to the cache only when no write interleaved, keyed by
        the epoch they provably belong to.  ``ctx`` (traced requests
        only) threads through to engines that take a trace context;
        for those that do not, a single ``engine_execute`` span wraps
        the call instead.
        """
        epoch_before = self.engine.data_epoch
        if ctx is None:
            results = self.engine.query_many(queries)
        elif self._engine_takes_obs:
            results = self.engine.query_many(queries, obs=ctx)
        else:
            with ctx.span("engine_execute", n_queries=len(queries)):
                results = self.engine.query_many(queries)
        epoch_after = self.engine.data_epoch
        for query, result in zip(queries, results):
            self.cache.store(query, result, epoch_before, epoch_after)
        return results

    def _validate_queries(self, queries: List[Query]) -> None:
        """Reject off-template queries before they reach the batcher.

        A query the engine cannot answer would otherwise fail the whole
        micro-batch it rides in; binding errors must surface as this
        request's 400, never as a co-batched neighbour's failure.
        """
        pred_attrs = tuple(self.engine.predicate_attrs)
        stat_attrs = getattr(self.engine, "stat_attrs", None)
        sketch_attrs = tuple(getattr(self.engine, "sketch_attrs", ()))
        for query in queries:
            if query.predicate_attrs != pred_attrs:
                raise _HTTPError(
                    400, f"predicate attributes "
                         f"{list(query.predicate_attrs)} do not match "
                         f"this synopsis (template: {list(pred_attrs)})")
            if query.agg in SKETCH_AGGS:
                if query.attr not in sketch_attrs:
                    raise _HTTPError(
                        400, f"no {query.agg.value} sketch is "
                             f"maintained for column {query.attr!r} "
                             f"(sketched: {list(sketch_attrs)})")
                if not all(lo == float("-inf") and hi == float("inf")
                           for lo, hi in zip(query.rect.lo,
                                             query.rect.hi)):
                    raise _HTTPError(
                        400, f"{query.agg.value} is answered from a "
                             f"whole-column sketch and cannot take "
                             f"predicate bounds")
                continue
            if stat_attrs is not None and \
                    query.agg is not AggFunc.COUNT and \
                    query.attr not in stat_attrs:
                raise _HTTPError(
                    400, f"aggregation column {query.attr!r} is not "
                         f"tracked by this synopsis (tracked: "
                         f"{list(stat_attrs)})")

    async def _answer(self, queries: List[Query],
                      ctx: Optional[TraceContext] = None
                      ) -> Tuple[List[dict], List[bool]]:
        """Cache lookups first, the misses through the engine lane.

        Untraced requests ride the micro-batcher; traced ones go to
        the executor directly (one engine call for the whole miss
        list), so their spans describe exactly this request's work.
        The engine pins batched == sequential, so the answers are
        bit-identical down either lane.
        """
        self._validate_queries(queries)
        results: List[Optional[QueryResult]] = [None] * len(queries)
        cached = [False] * len(queries)
        misses: List[int] = []
        epoch = self.engine.data_epoch
        t0 = time.perf_counter()
        for i, query in enumerate(queries):
            hit = self.cache.lookup(query, epoch)
            if hit is not None:
                results[i] = hit
                cached[i] = True
            else:
                misses.append(i)
        if ctx is not None:
            ctx.add_span("cache_lookup",
                         int((time.perf_counter() - t0) * 1e6),
                         n_queries=len(queries),
                         hits=len(queries) - len(misses))
        if misses:
            miss_queries = [queries[i] for i in misses]
            if ctx is None:
                answered = await self.batcher.submit_many(miss_queries)
            else:
                answered = await self._execute_traced(miss_queries, ctx)
            for i, result in zip(misses, answered):
                results[i] = result
        payloads = [result_to_dict(r) for r in results]
        for i, query in enumerate(queries):
            # TOPK clients want the members, not just the covered mass;
            # the item list rides next to the standard envelope (decoded
            # from the answer's own sketch blob, so it is exactly the
            # state the estimate came from).
            if query.agg is AggFunc.TOPK:
                blob = results[i].details.get(SKETCH_KEY)
                if blob is not None:
                    sketch = sketch_from_bytes(blob)
                    payloads[i]["topk"] = [
                        [float(value), int(count)] for value, count
                        in sketch.top(int(query.param))]
        return payloads, cached

    async def _execute_traced(self, queries: List[Query],
                              ctx: TraceContext) -> List[QueryResult]:
        """Engine lane for a traced request (skips the batcher)."""
        loop = asyncio.get_running_loop()
        t_submit = time.perf_counter()

        def run() -> List[QueryResult]:
            # Queue wait between the loop handing the job off and the
            # executor picking it up - the traced analogue of the
            # batcher's admission delay.
            ctx.add_span("admission",
                         int((time.perf_counter() - t_submit) * 1e6),
                         n_queries=len(queries))
            return self._engine_execute(queries, ctx)

        return await loop.run_in_executor(self._executor, run)

    # ------------------------------------------------------------------ #
    # tracing / explain
    # ------------------------------------------------------------------ #
    def _trace_context(self, headers: Optional[Dict[str, str]],
                       force: bool) -> Optional[TraceContext]:
        """Sample this request (honouring ``X-Janus-Trace``).

        A client-supplied trace id (hex) always traces and propagates
        verbatim, so a caller can stitch our spans into its own trace.
        """
        raw = headers.get("x-janus-trace") if headers else None
        tid: Optional[int] = None
        if raw:
            try:
                tid = int(raw, 16)
            except ValueError:
                raise _HTTPError(
                    400, f"bad X-Janus-Trace header {raw!r} "
                         f"(expected hex)") from None
            if tid <= 0:
                raise _HTTPError(
                    400, "X-Janus-Trace must be a positive hex id")
        return self.tracer.sample(force=force or tid is not None,
                                  trace_id=tid)

    def _finish_request(self, route: str, t_req: float, n_queries: int,
                        ctx: Optional[TraceContext]) -> Optional[dict]:
        """Slow-query accounting + trace completion for one read."""
        dur_ms = (time.perf_counter() - t_req) * 1e3
        if self.slow_query_ms is not None and dur_ms > self.slow_query_ms:
            self._c_slow.inc()
            log_event(self._log_stream, "slow_query", route=route,
                      duration_ms=round(dur_ms, 3), n_queries=n_queries,
                      trace_id=f"{ctx.trace_id:x}" if ctx else None)
        if ctx is None:
            return None
        trace = ctx.finish(route=route)
        self._c_traces.inc()
        return trace

    def _explain_report(self, queries: List[Query], payloads: List[dict],
                        cached: List[bool], trace: dict,
                        ctx: TraceContext) -> dict:
        """Per-stage timings + per-query routing decisions.

        Built entirely from the request's own trace (span durations,
        planner notes) plus a read of the engine's routing summaries
        to name *why* each pruned shard was skipped - advisory, so the
        lock-free summary read is fine (see ``ShardSummary.classify``).
        """
        by_name: Dict[str, int] = {}
        for span in trace["spans"]:
            by_name[span["name"]] = \
                by_name.get(span["name"], 0) + int(span["dur_us"])
        stages = {name: by_name[name]
                  for name in ("parse", "admission", "cache_lookup",
                               "plan", "merge") if name in by_name}
        if "execute" in by_name:
            stages["execute"] = by_name["execute"]
        elif "engine_execute" in by_name:
            # Single-engine path: the engine span is the execute stage.
            stages["execute"] = by_name["engine_execute"]
        shard_execute = [{"shard": span["tags"].get("shard"),
                          "dur_us": int(span["dur_us"])}
                         for span in trace["spans"]
                         if span["name"] == "shard_execute"]
        notes = ctx.notes
        subsets = notes.get("subsets")
        live = notes.get("live", [])
        summaries = getattr(self.engine, "summaries", None)
        miss_pos = {i: j for j, i in enumerate(
            i for i in range(len(queries)) if not cached[i])}
        per_query: List[dict] = []
        for i, query in enumerate(queries):
            if cached[i]:
                per_query.append({"tier": "cache"})
                continue
            if query.agg in SKETCH_AGGS:
                entry = {"tier": "sketch"}
            else:
                entry = {"tier": "exact" if payloads[i].get("exact")
                         else "estimate"}
            j = miss_pos.get(i)
            if subsets is not None and j is not None and j < len(subsets):
                contrib = [int(s) for s in subsets[j]]
                entry["shards"] = contrib
                if summaries is not None:
                    lo = np.asarray(query.rect.lo, dtype=np.float64)
                    hi = np.asarray(query.rect.hi, dtype=np.float64)
                    entry["pruned"] = [
                        {"shard": int(s),
                         "reason": summaries[s].classify(lo, hi)}
                        for s in live if int(s) not in contrib]
            per_query.append(entry)
        return {"trace_id": trace["trace_id"],
                "duration_us": trace["duration_us"],
                "stages_us": stages,
                "shard_execute": shard_execute,
                "queries": per_query}

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    async def _route(self, method: str, path: str,
                     headers: Dict[str, str], body: bytes) -> dict:
        path = path.split("?", 1)[0]
        handler = self._routes.get((method, path))
        if handler is None:
            if path in self._known_paths:
                raise _HTTPError(405, f"method {method} not allowed "
                                      f"for {path}")
            raise _HTTPError(404, f"unknown route {path}")
        counter = self._route_counters.get(path)
        if counter is None:
            counter = self._route_counters[path] = self.metrics.counter(
                "janus_service_requests_total", route=path)
        counter.inc()
        hist = self._route_hists.get(path)
        if hist is None:
            hist = self._route_hists[path] = self.metrics.histogram(
                "janus_service_request_seconds", route=path)
        payload = None
        if method == "POST":
            if len(body) > 256 * 1024:
                # Decoding a large body inline would stall the event
                # loop (and every other connection's latency with it).
                payload = await asyncio.get_running_loop() \
                    .run_in_executor(self._executor, self._json_body,
                                     body)
            else:
                payload = self._json_body(body)
        t0 = time.perf_counter()
        try:
            return await handler(payload, headers)
        finally:
            hist.observe(time.perf_counter() - t0)

    @staticmethod
    def _json_body(body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HTTPError(400, "body must be a JSON object")
        return payload

    async def _handle_health(self, _payload, _headers) -> dict:
        fleet_health = getattr(self.engine, "fleet_health", None)
        if fleet_health is None:
            return {"status": "ok"}
        # Fleet engines report per-worker liveness; a fleet with a
        # dead worker still serves routable queries but is "degraded"
        # until the supervisor's restart lands.
        return fleet_health()

    async def _handle_query(self, payload: dict, headers) -> dict:
        t_req = time.perf_counter()
        if "queries" in payload:
            raw = payload["queries"]
            single = False
        elif "query" in payload:
            raw = [payload["query"]]
            single = True
        else:
            raise _HTTPError(400, "expected 'query' or 'queries'")
        if not isinstance(raw, list):
            raise _HTTPError(400, "'queries' must be a list")
        explain = bool(payload.get("explain", False))
        if explain:
            self._c_explain.inc()
        ctx = self._trace_context(headers, force=explain)
        t0 = time.perf_counter()
        try:
            queries = [query_from_dict(q) for q in raw]
        except ValueError as exc:
            raise _HTTPError(400, str(exc)) from exc
        if ctx is not None:
            ctx.add_span("parse",
                         int((time.perf_counter() - t0) * 1e6),
                         n_queries=len(queries))
        results, cached = await self._answer(queries, ctx)
        out = {"result": results[0], "cached": cached[0]} if single \
            else {"results": results, "cached": cached}
        trace = self._finish_request("/query", t_req, len(queries), ctx)
        if explain and trace is not None:
            out["explain"] = self._explain_report(queries, results,
                                                  cached, trace, ctx)
        return out

    async def _handle_sql(self, payload: dict, headers) -> dict:
        t_req = time.perf_counter()
        if "sql" not in payload:
            raise _HTTPError(400, "expected 'sql'")
        raw = payload["sql"]
        single = isinstance(raw, str)
        statements = [raw] if single else raw
        if not isinstance(statements, list) or \
                not all(isinstance(s, str) for s in statements):
            raise _HTTPError(400, "'sql' must be a string or a list "
                                  "of strings")
        explain = bool(payload.get("explain", False))
        if explain:
            self._c_explain.inc()
        ctx = self._trace_context(headers, force=explain)
        t0 = time.perf_counter()
        try:
            queries = [compile_sql(s, self.engine.agg_attr,
                                   self.engine.predicate_attrs,
                                   stat_attrs=getattr(self.engine,
                                                      "stat_attrs",
                                                      None))
                       for s in statements]
        except SQLError as exc:
            raise _HTTPError(400, str(exc)) from exc
        if ctx is not None:
            ctx.add_span("parse",
                         int((time.perf_counter() - t0) * 1e6),
                         n_queries=len(queries))
        results, cached = await self._answer(queries, ctx)
        out = {"result": results[0], "cached": cached[0]} if single \
            else {"results": results, "cached": cached}
        trace = self._finish_request("/sql", t_req, len(queries), ctx)
        if explain and trace is not None:
            out["explain"] = self._explain_report(queries, results,
                                                  cached, trace, ctx)
        return out

    def _decode_and_insert(self, raw) -> List[int]:
        """Array conversion, validation and ingest, off the loop."""
        try:
            rows = np.asarray(raw, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _HTTPError(400, f"bad rows: {exc}") from exc
        if rows.size and rows.ndim != 2:
            raise _HTTPError(400, "rows must be a list of equal-length "
                                  "numeric lists")
        if rows.size and not np.isfinite(rows).all():
            # One NaN row would poison SUM/AVG delta statistics for
            # every client (and a later delete cannot heal nan - nan);
            # the trust boundary rejects it before the engine sees it.
            raise _HTTPError(400, "rows must contain only finite "
                                  "values")
        try:
            return self.engine.insert_many(rows)
        except ValueError as exc:
            raise _HTTPError(400, str(exc)) from exc

    async def _handle_insert(self, payload: dict, _headers) -> dict:
        if "rows" not in payload:
            raise _HTTPError(400, "expected 'rows'")
        loop = asyncio.get_running_loop()
        tids = await loop.run_in_executor(
            self._executor, self._decode_and_insert, payload["rows"])
        return {"tids": [int(t) for t in tids],
                "epoch": int(self.engine.data_epoch)}

    async def _handle_delete(self, payload: dict, _headers) -> dict:
        if "tids" not in payload:
            raise _HTTPError(400, "expected 'tids'")
        try:
            tids = [int(t) for t in payload["tids"]]
        except (TypeError, ValueError) as exc:
            raise _HTTPError(400, f"bad tids: {exc}") from exc
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(
                self._executor, self.engine.delete_many, tids)
        except KeyError as exc:
            raise _HTTPError(400, f"delete failed: {exc}") from exc
        return {"deleted": len(tids),
                "epoch": int(self.engine.data_epoch)}

    async def _handle_stats(self, _payload, _headers) -> dict:
        engine = self.engine
        stats = {
            "engine": {
                "rows": len(engine.table),
                "pool_size": engine.pool_size,
                "data_epoch": int(engine.data_epoch),
            },
            "batcher": self.batcher.stats.to_dict(),
            "cache": dict(self.cache.stats.to_dict(),
                          enabled=self.cache.enabled,
                          entries=len(self.cache)),
            "requests": dict(self.request_counts),
            "n_bad_requests": self.n_bad_requests,
            "uptime_seconds": time.time() - self._started_at,
        }
        n_shards = getattr(engine, "n_shards", None)
        if n_shards is not None:
            stats["engine"]["n_shards"] = n_shards
            stats["engine"]["shard_sizes"] = engine.shard_sizes()
        if hasattr(engine, "routing_stats"):
            stats["engine"]["routing"] = engine.routing_stats()
        fleet_stats = getattr(engine, "fleet_stats", None)
        if fleet_stats is not None:
            stats["engine"]["fleet"] = fleet_stats()
        return stats

    async def _handle_traces(self, _payload, _headers) -> dict:
        traces = self.tracer.snapshot()
        return {"n": len(traces),
                "sample_every": self.tracer.sample_every,
                "capacity": self.tracer.capacity,
                "traces": traces}

    def _sample_mirrors(self) -> None:
        """Scrape-time snapshot of engine/fleet state into the registry.

        Keeps the historical ``janus_service_*`` series names live
        (gauges and mirrored totals are *set*, not incremented, so a
        scrape is idempotent).  Routing and fleet mirrors only exist
        for engines that expose them - a plain single-engine server
        never emits those families.
        """
        self._g_uptime.set(time.time() - self._started_at)
        self._g_rows.set(len(self.engine.table))
        self._c_epoch.set(int(self.engine.data_epoch))
        m = self.metrics
        routing = getattr(self.engine, "routing_stats", None)
        if routing is not None:
            r = routing()
            m.counter("janus_service_routed_queries_total").set(
                r["n_routed_queries"])
            m.counter("janus_service_broadcast_queries_total").set(
                r["n_broadcast_queries"])
            m.counter("janus_service_pruned_shard_queries_total").set(
                r["n_pruned_shard_queries"])
            m.gauge("janus_service_mean_shards_touched").set(
                r["mean_shards_touched"])
            for k, count in enumerate(r["shards_touched_hist"]):
                m.counter("janus_service_shards_touched_total",
                          shards=str(k)).set(count)
        fleet_stats = getattr(self.engine, "fleet_stats", None)
        if fleet_stats is not None:
            f = fleet_stats()
            m.gauge("janus_service_workers").set(f["n_workers"])
            m.gauge("janus_service_workers_alive").set(
                sum(1 for w in f["workers"].values() if w["alive"]))
            for wid, w in sorted(f["workers"].items()):
                label = {"worker": str(wid)}
                m.counter("janus_service_worker_requests_total",
                          **label).set(w["requests"])
                m.counter("janus_service_worker_bytes_sent_total",
                          **label).set(w["bytes_sent"])
                m.counter("janus_service_worker_bytes_received_total",
                          **label).set(w["bytes_received"])
                m.counter("janus_service_worker_restarts_total",
                          **label).set(w["restarts"])
                m.gauge("janus_service_worker_p50_seconds",
                        **label).set(w["p50_seconds"])

    async def _handle_metrics(self, _payload, _headers) -> dict:
        self._sample_mirrors()
        engine_reg = getattr(self.engine, "metrics", None)
        if isinstance(engine_reg, MetricsRegistry) and \
                engine_reg is not self.metrics:
            text = render_exposition(self.metrics, engine_reg)
        else:
            text = render_exposition(self.metrics)
        return {"__raw__": text}

    # ------------------------------------------------------------------ #
    # HTTP codec
    # ------------------------------------------------------------------ #
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    # The idle timeout bounds parked connections: a
                    # client that connects (or keeps alive) and never
                    # sends a request must not hold a task and an fd
                    # forever.
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self._idle_timeout)
                except asyncio.TimeoutError:
                    break
                except _HTTPError as exc:
                    # A request we could not even parse still deserves
                    # a response; the connection closes after it since
                    # the stream position is unreliable.
                    self._c_bad.inc()
                    self._write_response(writer, exc.status,
                                         {"error": str(exc)}, False)
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, version, headers, body = request
                keep_alive = (version != "HTTP/1.0" and
                              headers.get("connection", "") != "close")
                try:
                    payload = await self._route(method, path, headers,
                                                body)
                    status = 200
                except _HTTPError as exc:
                    payload = {"error": str(exc)}
                    status = exc.status
                    self._c_bad.inc()
                except FleetUnavailableError as exc:
                    # A fleet worker is down and the query needs its
                    # shard: refuse explicitly rather than answer
                    # wrong; the fleet self-heals, clients retry.
                    payload = {"error": str(exc), "retryable": True}
                    status = 503
                    self._c_bad.inc()
                except Exception as exc:    # engine-side failure
                    payload = {"error": f"{type(exc).__name__}: {exc}"}
                    status = 500
                    self._c_bad.inc()
                self._write_response(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                asyncio.CancelledError, _HTTPError):
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; ``None`` at a clean connection close."""
        try:
            line = await reader.readline()
        except ValueError:      # request line over the stream limit
            raise _HTTPError(400, "request line too long") from None
        except ConnectionResetError:
            return None
        if not line:
            return None
        try:
            method, path, version = \
                line.decode("latin-1").strip().split(" ", 2)
        except ValueError:
            raise _HTTPError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                line = await reader.readline()
            except ValueError:  # a header over the stream limit
                raise _HTTPError(400, "header line too long") from None
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                # One connection must not grow server memory without
                # bound by streaming headers forever.
                raise _HTTPError(431, "request headers too large")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _HTTPError(400, f"bad Content-Length "
                                  f"{raw_length!r}") from None
        if length < 0:
            raise _HTTPError(400, f"bad Content-Length {raw_length!r}")
        if length > _MAX_BODY:
            raise _HTTPError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, version, headers, body

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        payload: dict, keep_alive: bool) -> None:
        if "__raw__" in payload:            # /metrics text exposition
            body = payload["__raw__"].encode("utf-8")
            content_type = "text/plain; version=0.0.4"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n")
        writer.write(head.encode("latin-1") + body)


# ---------------------------------------------------------------------- #
# background serving for synchronous callers (tests, benchmarks, examples)
# ---------------------------------------------------------------------- #
class ServiceHandle:
    """A running server on a private event-loop thread.

    ``host``/``port`` are live once :func:`serve_background` returns;
    :meth:`stop` shuts the server down gracefully and joins the thread.
    The underlying :class:`AQPServer` is exposed as :attr:`server` for
    stats inspection (its counters are plain ints, safe to read).
    """

    def __init__(self, server: AQPServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread,
                 stop_event: asyncio.Event) -> None:
        self.server = server
        self.host = server.host
        self.port = server.port
        self._loop = loop
        self._thread = thread
        self._stop_event = stop_event

    def stop(self) -> None:
        if not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_background(engine, **kwargs) -> ServiceHandle:
    """Start an :class:`AQPServer` on a daemon thread and wait for bind.

    Keyword arguments are forwarded to :class:`AQPServer`.  Returns a
    :class:`ServiceHandle` whose ``port`` is resolved (pass ``port=0``
    for an ephemeral one).  Startup errors re-raise in the caller.
    """
    started = threading.Event()
    box: dict = {}

    async def main() -> None:
        server = AQPServer(engine, **kwargs)
        stop_event = asyncio.Event()
        try:
            await server.start()
        except Exception as exc:            # surface bind errors
            box["error"] = exc
            started.set()
            return
        box["server"] = server
        box["loop"] = asyncio.get_running_loop()
        box["stop_event"] = stop_event
        started.set()
        await stop_event.wait()
        await server.stop()

    thread = threading.Thread(target=lambda: asyncio.run(main()),
                              name="janus-service", daemon=True)
    thread.start()
    started.wait(timeout=30)
    if "error" in box:
        raise box["error"]
    if "server" not in box:
        raise RuntimeError("service failed to start within 30s")
    return ServiceHandle(box["server"], box["loop"], thread,
                         box["stop_event"])
