"""Thin synchronous HTTP client for the AQP service.

:class:`ServiceClient` speaks the JSON wire format of
:class:`~repro.service.server.AQPServer` over one keep-alive
``http.client`` connection.  It is deliberately minimal - the tests,
the serving example and the latency benchmark all drive the service
through it, so it doubles as the reference for the wire protocol.

One client owns one connection and is **not** thread-safe; concurrent
benchmark drivers create one client per thread (mirroring real
connection-pooled clients, one connection per in-flight request).
Results come back as full :class:`~repro.core.queries.QueryResult`
envelopes (estimate, both variance components, exactness, frontier
sizes), so ``result.ci()`` works client-side exactly as in-process;
the server-side ``details`` dict is not transported, and the client
records whether the server answered from its epoch cache as
``result.details["cached"]``.
"""

from __future__ import annotations

import json
from http.client import (BadStatusLine, CannotSendRequest, HTTPConnection,
                         RemoteDisconnected)
from typing import List, Optional, Sequence

import numpy as np

from ..broker.requests import query_to_dict, result_from_dict
from ..core.queries import Query, QueryResult

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response; carries the HTTP status and server message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """A keep-alive JSON client bound to one server address."""

    def __init__(self, host: str, port: int,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port,
                                        timeout=self.timeout)
        return self._conn

    #: Routes safe to replay after a dropped keep-alive connection.
    #: Mutating routes (/insert, /delete) are NOT retried: the server
    #: may have applied the request before the connection died, and a
    #: blind replay would ingest the rows twice.
    _IDEMPOTENT = ("/query", "/sql", "/stats", "/metrics", "/health")

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> bytes:
        body = json.dumps(payload).encode("utf-8") \
            if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        retriable = path.split("?", 1)[0] in self._IDEMPOTENT
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (RemoteDisconnected, BadStatusLine, CannotSendRequest,
                    ConnectionResetError, BrokenPipeError):
                # A keep-alive connection the server closed between
                # requests; reconnect once for read-only routes, give
                # up immediately for writes (not safe to replay).
                self.close()
                if attempt or not retriable:
                    raise
        if response.status >= 300:
            try:
                message = json.loads(data.decode("utf-8"))["error"]
            except (ValueError, KeyError, UnicodeDecodeError):
                message = data.decode("utf-8", "replace")
            raise ServiceError(response.status, message)
        return data

    def _json(self, method: str, path: str,
              payload: Optional[dict] = None) -> dict:
        return json.loads(self._request(method, path, payload)
                          .decode("utf-8"))

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #
    def insert_many(self, rows) -> List[int]:
        """POST /insert: bulk ingest; returns the assigned tids."""
        rows = np.asarray(rows, dtype=np.float64)
        payload = self._json("POST", "/insert",
                             {"rows": rows.tolist()})
        return [int(t) for t in payload["tids"]]

    def insert(self, values: Sequence[float]) -> int:
        """Insert one row; returns its tid."""
        return self.insert_many([list(values)])[0]

    def delete_many(self, tids: Sequence[int]) -> int:
        """POST /delete: bulk delete by tid; returns the count."""
        payload = self._json("POST", "/delete",
                             {"tids": [int(t) for t in tids]})
        return int(payload["deleted"])

    def delete(self, tid: int) -> None:
        self.delete_many((tid,))

    # ------------------------------------------------------------------ #
    # query plane
    # ------------------------------------------------------------------ #
    @staticmethod
    def _envelope(payload: dict, cached: bool) -> QueryResult:
        # Whether the server answered from its epoch cache, surfaced
        # the same way other answer metadata travels in-process; TOPK
        # answers additionally carry the decoded (value, count) item
        # list the server derives from its heavy-hitter sketch.
        result = result_from_dict(payload)
        if "topk" in payload:
            result.details["topk"] = [(float(v), int(c))
                                      for v, c in payload["topk"]]
        result.details["cached"] = bool(cached)
        return result

    def query(self, query: Query) -> QueryResult:
        """POST /query with one structured query.

        ``result.details["cached"]`` reports whether the server
        answered from its epoch cache (same for the methods below).
        """
        payload = self._json("POST", "/query",
                             {"query": query_to_dict(query)})
        return self._envelope(payload["result"], payload["cached"])

    def query_many(self, queries: Sequence[Query]) -> List[QueryResult]:
        """POST /query with a batch; results in request order."""
        payload = self._json("POST", "/query", {
            "queries": [query_to_dict(q) for q in queries]})
        return [self._envelope(r, c)
                for r, c in zip(payload["results"], payload["cached"])]

    def sql(self, statement: str) -> QueryResult:
        """POST /sql with one statement of the supported subset."""
        payload = self._json("POST", "/sql", {"sql": statement})
        return self._envelope(payload["result"], payload["cached"])

    def sql_many(self, statements: Sequence[str]) -> List[QueryResult]:
        """POST /sql with a statement batch; results in order."""
        payload = self._json("POST", "/sql",
                             {"sql": list(statements)})
        return [self._envelope(r, c)
                for r, c in zip(payload["results"], payload["cached"])]

    # ------------------------------------------------------------------ #
    # control plane
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """GET /stats: engine, batcher and cache counters as JSON."""
        return self._json("GET", "/stats")

    def metrics(self) -> str:
        """GET /metrics: Prometheus text exposition."""
        return self._request("GET", "/metrics").decode("utf-8")

    def health(self) -> bool:
        try:
            return self._json("GET", "/health").get("status") == "ok"
        except (OSError, ServiceError):
            return False
