"""Micro-batching admission: concurrent requests become one batch call.

The PR 2 batched query engine answers a whole batch under one lock with
one shared frontier traversal - but an HTTP server naturally receives
queries one connection at a time, which would degrade to per-query
calls exactly when load is highest.  :class:`MicroBatcher` converts
concurrency back into batches: every in-flight ``/query`` / ``/sql``
request parks its queries (with a future each) in a pending list, and a
flush - triggered by the batch filling up (``max_batch``) or by a short
linger deadline (``max_linger_ms``) expiring after the first arrival -
executes the whole accumulation as a single
:meth:`~repro.core.janus.JanusAQP.query_many` call in a worker thread,
then resolves the futures.

While one flush is executing in the worker, new arrivals keep
accumulating into the *next* batch, so a slow synopsis pass converts
waiting clients into larger (cheaper per query) batches instead of a
queue of tiny calls - the classic group-commit dynamic.  Under a single
client nothing lingers beyond one deadline, keeping the added p50
latency bounded by ``max_linger_ms``.

All bookkeeping runs on the event loop (single-threaded, no locks);
only the engine call itself runs in the executor.  Results are
per-query pure functions of the batch members (PR 2 pins batched ==
sequential bit-identically), so co-batching requests from different
clients cannot change any answer.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.queries import Query, QueryResult
from ..obs.metrics import MetricsRegistry

__all__ = ["BatcherStats", "MicroBatcher"]

ExecuteFn = Callable[[List[Query]], List[QueryResult]]


class BatcherStats:
    """Flush accounting reported by ``/stats`` and ``/metrics``.

    Registry-backed: counts live in ``janus_service_batch*``
    instruments; the historical attribute surface stays as properties
    (``max_batch_size`` keeps its setter - the latency benchmark
    resets it between phases).
    """

    __slots__ = ("_c_batches", "_c_queries", "_g_max", "_c_full",
                 "_c_linger", "_c_isolated")

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        registry = metrics if metrics is not None else MetricsRegistry()
        self._c_batches = registry.counter("janus_service_batches_total")
        self._c_queries = registry.counter(
            "janus_service_batched_queries_total")
        self._g_max = registry.gauge("janus_service_batch_max_size")
        # flushed because max_batch filled
        self._c_full = registry.counter(
            "janus_service_batch_flush_full_total")
        # flushed by the linger deadline
        self._c_linger = registry.counter(
            "janus_service_batch_flush_linger_total")
        # re-run solo after a poisoned batch
        self._c_isolated = registry.counter(
            "janus_service_batch_isolated_total")

    def record(self, size: int, reason: str) -> None:
        self._c_batches.inc()
        self._c_queries.inc(size)
        self._g_max.set(max(self._g_max.value, size))
        if reason == "full":
            self._c_full.inc()
        elif reason == "isolated":
            self._c_isolated.inc()
        else:
            self._c_linger.inc()

    @property
    def n_batches(self) -> int:
        return int(self._c_batches.value)

    @property
    def n_queries(self) -> int:
        return int(self._c_queries.value)

    @property
    def max_batch_size(self) -> int:
        return int(self._g_max.value)

    @max_batch_size.setter
    def max_batch_size(self, value: int) -> None:
        self._g_max.set(int(value))

    @property
    def n_flush_full(self) -> int:
        return int(self._c_full.value)

    @property
    def n_flush_linger(self) -> int:
        return int(self._c_linger.value)

    @property
    def n_isolated(self) -> int:
        return int(self._c_isolated.value)

    @property
    def avg_batch_size(self) -> float:
        return self.n_queries / self.n_batches if self.n_batches else 0.0

    def to_dict(self) -> dict:
        return {"n_batches": self.n_batches, "n_queries": self.n_queries,
                "max_batch_size": self.max_batch_size,
                "avg_batch_size": self.avg_batch_size,
                "n_flush_full": self.n_flush_full,
                "n_flush_linger": self.n_flush_linger,
                "n_isolated": self.n_isolated}


class MicroBatcher:
    """Coalesces concurrently submitted queries into batch executions.

    ``execute`` is a synchronous callable (it runs inside ``executor``)
    mapping a query list to a result list in order - typically a thin
    wrapper around ``engine.query_many`` that also feeds the result
    cache.  One batcher serves one engine; create it from inside a
    running event loop.
    """

    def __init__(self, execute: ExecuteFn, max_batch: int = 64,
                 max_linger_ms: float = 2.0,
                 executor=None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_linger_ms < 0:
            raise ValueError("max_linger_ms must be >= 0")
        self._execute = execute
        self.max_batch = int(max_batch)
        self.max_linger = max_linger_ms / 1000.0
        self._executor = executor
        self._pending: List[Tuple[Query, asyncio.Future]] = []
        self._timer: Optional[asyncio.Task] = None
        self._inflight: set = set()
        self._closed = False
        self.stats = BatcherStats(metrics)

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    async def submit(self, query: Query) -> QueryResult:
        """Park one query and await its answer."""
        return (await self.submit_many((query,)))[0]

    async def submit_many(self, queries: Sequence[Query]
                          ) -> List[QueryResult]:
        """Park a request's queries and await all its answers in order.

        The request's queries may be split across engine batches (they
        are answered independently); the await resolves when the last
        one lands.
        """
        queries = list(queries)
        if not queries:
            return []
        if self._closed:
            raise RuntimeError("batcher is closed")
        loop = asyncio.get_running_loop()
        futures = [loop.create_future() for _ in queries]
        self._pending.extend(zip(queries, futures))
        while len(self._pending) >= self.max_batch:
            self._flush(self._pending[:self.max_batch], "full")
            self._pending = self._pending[self.max_batch:]
        if self._pending and self._timer is None:
            self._timer = loop.create_task(self._linger())
        return list(await asyncio.gather(*futures))

    # ------------------------------------------------------------------ #
    # flushing
    # ------------------------------------------------------------------ #
    def _flush(self, batch: List[Tuple[Query, asyncio.Future]],
               reason: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not batch:
            return
        task = asyncio.get_running_loop().create_task(
            self._run(batch, reason))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _linger(self) -> None:
        try:
            await asyncio.sleep(self.max_linger)
        except asyncio.CancelledError:
            return
        self._timer = None
        batch, self._pending = self._pending, []
        self._flush(batch, "linger")

    async def _run(self, batch: List[Tuple[Query, asyncio.Future]],
                   reason: str) -> None:
        queries = [query for query, _ in batch]
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._executor, self._execute, queries)
        except Exception:
            # A poisoned batch (one malformed query fails the whole
            # engine call): isolate by re-running per query so one
            # client's bad request cannot fail its co-batched
            # neighbours, exactly like the stream driver's fallback.
            await self._run_isolated(batch)
            return
        self.stats.record(len(batch), reason)
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)

    async def _run_isolated(self,
                            batch: List[Tuple[Query, asyncio.Future]]
                            ) -> None:
        loop = asyncio.get_running_loop()
        for query, future in batch:
            try:
                result = (await loop.run_in_executor(
                    self._executor, self._execute, [query]))[0]
            except Exception as exc:
                if not future.done():
                    future.set_exception(exc)
            else:
                self.stats.record(1, "isolated")
                if not future.done():
                    future.set_result(result)

    async def close(self) -> None:
        """Flush whatever is parked and wait for in-flight batches."""
        self._closed = True
        batch, self._pending = self._pending, []
        self._flush(batch, "linger")
        while self._inflight:
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)
