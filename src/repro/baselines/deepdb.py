"""DeepDB-style learned baseline (paper Section 6.1.3).

Wraps the :mod:`repro.baselines.spn` sum-product network as an AQP
synopsis with the evaluation protocol the paper uses: train on 10% of the
current data, answer COUNT/SUM/AVG from the model, and *re-train from
scratch* on re-optimization ("the re-optimization cost of DeepDB is the
cost of re-training instead of incremental training", Section 6.3).
Inserts and deletes only touch the base table; the model's resolution is
frozen until the next retrain - which is exactly why its accuracy stays
flat across progress in Table 2.
"""

from __future__ import annotations

import math
import time
from typing import Optional, Sequence

import numpy as np

from ..core.queries import AggFunc, Query, QueryResult
from ..core.table import Table
from .spn import learn_spn


class DeepDBBaseline:
    """SPN-backed AQP over a dynamic table."""

    def __init__(self, table: Table, training_rate: float = 0.10,
                 attrs: Optional[Sequence[str]] = None,
                 min_rows: int = 256, n_bins: int = 32,
                 seed: int = 0) -> None:
        self.table = table
        self.training_rate = training_rate
        self.attrs = tuple(attrs) if attrs else table.schema
        self.min_rows = min_rows
        self.n_bins = n_bins
        self._rng = np.random.default_rng(seed)
        self.model = None
        self.n_at_train = 0
        self.last_train_seconds = 0.0

    # ------------------------------------------------------------------ #
    def fit(self) -> float:
        """(Re-)train on a fresh uniform sample; returns training seconds.

        The leaf floor scales with the training-set size so the model's
        *capacity* (number of mixture components / histogram resolution)
        stays roughly fixed as data grows - DeepDB "has a roughly fixed
        resolution of the data (it does not increase the number of
        parameters as more data is inserted)" (Section 6.2) - while the
        training *cost* still grows with the rows processed.
        """
        n = len(self.table)
        goal = max(self.min_rows, int(self.training_rate * n))
        tids = self.table.sample_tids(goal, self._rng)
        rows = self.table.rows_for(tids)
        cols = [self.table.col_index(a) for a in self.attrs]
        min_rows = max(self.min_rows, rows.shape[0] // 16)
        t0 = time.perf_counter()
        self.model = learn_spn(rows[:, cols], self.attrs,
                               min_rows=min_rows, n_bins=self.n_bins,
                               seed=int(self._rng.integers(2 ** 31)))
        self.last_train_seconds = time.perf_counter() - t0
        self.n_at_train = n
        return self.last_train_seconds

    # updates: the table changes, the model does not ---------------------- #
    def insert(self, values: Sequence[float]) -> int:
        return self.table.insert(values)

    def delete(self, tid: int) -> None:
        self.table.delete(tid)

    # ------------------------------------------------------------------ #
    def query(self, query: Query) -> QueryResult:
        if self.model is None:
            raise RuntimeError("model not trained; call fit()")
        ranges = {attr: (query.rect.lo[dim], query.rect.hi[dim])
                  for dim, attr in enumerate(query.predicate_attrs)}
        # Scale by the population the model knows about.
        n = float(self.n_at_train)
        p = self.model.prob(ranges)
        if query.agg is AggFunc.COUNT:
            return QueryResult(n * p, 0.0, 0.0, exact=False)
        e = self.model.expectation(query.attr, ranges)
        if query.agg is AggFunc.SUM:
            return QueryResult(n * e, 0.0, 0.0, exact=False)
        if query.agg is AggFunc.AVG:
            est = e / p if p > 0 else math.nan
            return QueryResult(est, 0.0, 0.0, exact=False)
        raise ValueError(f"DeepDB baseline does not support {query.agg}")

    def model_size(self) -> int:
        return self.model.size() if self.model is not None else 0
