"""Stratified reservoir sampling baseline (paper Section 6.1.3, "SRS").

Strata are fixed at construction by equal-depth partitioning of the
(single) predicate attribute; each stratum keeps an exact population
counter and a virtual slice of a global dynamic reservoir.  Queries use
the standard stratified estimator: exact-weighted per-stratum sample
means - structurally the "all leaves partial" special case of a partition
tree with no hierarchy and no node aggregates.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import estimators
from ..core.queries import AggFunc, Query, QueryResult
from ..core.table import Table
from ..partitioning.equidepth import equidepth_boundaries
from ..sampling.reservoir import DynamicReservoir
from ..sampling.stratified import StrataView


class StratifiedReservoirBaseline:
    """Equal-depth stratified sampling AQP over a dynamic table."""

    def __init__(self, table: Table, predicate_attr: str,
                 n_strata: int = 128, sample_rate: float = 0.01,
                 seed: int = 0, min_pool: int = 128) -> None:
        self.table = table
        self.predicate_attr = predicate_attr
        self.sample_rate = sample_rate
        self._attr_idx = table.col_index(predicate_attr)
        keys = table.column(predicate_attr)
        self.boundaries = equidepth_boundaries(keys, n_strata)
        self.n_strata = len(self.boundaries) + 1
        self._populations = np.zeros(self.n_strata)
        for key in keys:
            self._populations[self._stratum_of_key(float(key))] += 1
        target = max(min_pool, int(2 * sample_rate * max(len(table), 1)))
        self.reservoir = DynamicReservoir(table, target, seed=seed)
        self._rows: Dict[int, np.ndarray] = {}
        self.reservoir.subscribe(self)
        self.strata = StrataView(self.reservoir, self._route_tid)
        self.reservoir.initialize()

    # ------------------------------------------------------------------ #
    def _stratum_of_key(self, key: float) -> int:
        return bisect.bisect_left(self.boundaries, key)

    def _route_tid(self, tid: int) -> Optional[int]:
        row = self._rows.get(tid)
        if row is None:
            return None
        return self._stratum_of_key(float(row[self._attr_idx]))

    # observer protocol -------------------------------------------------- #
    def on_add(self, tid: int) -> None:
        self._rows[tid] = self.table.row(tid).copy()

    def on_remove(self, tid: int) -> None:
        self._rows.pop(tid, None)

    def on_reset(self, tids: List[int]) -> None:
        self._rows = {t: self.table.row(t).copy() for t in tids}

    # updates ------------------------------------------------------------ #
    def insert(self, values: Sequence[float]) -> int:
        tid = self.table.insert(values)
        key = float(self.table.row(tid)[self._attr_idx])
        self._populations[self._stratum_of_key(key)] += 1
        self.reservoir.on_insert(tid)
        want = int(2 * self.sample_rate * len(self.table))
        if want > 1.25 * self.reservoir.target_size:
            self.reservoir.set_target(want, resample=True)
        return tid

    def delete(self, tid: int) -> None:
        key = float(self.table.row(tid)[self._attr_idx])
        self._populations[self._stratum_of_key(key)] -= 1
        self.table.delete(tid)
        self.reservoir.on_delete(tid)

    # queries ------------------------------------------------------------ #
    def _stratum_rows(self, stratum: int) -> np.ndarray:
        tids = self.strata.stratum(stratum)
        if not tids:
            return np.empty((0, len(self.table.schema)))
        return np.stack([self._rows[t] for t in tids])

    def query(self, query: Query) -> QueryResult:
        if query.predicate_attrs != (self.predicate_attr,):
            raise ValueError("SRS supports only its stratification attr")
        lo, hi = query.rect.lo[0], query.rect.hi[0]
        first = self._stratum_of_key(lo)
        last = self._stratum_of_key(hi)
        schema = self.table.schema
        attr_idx = None if query.agg is AggFunc.COUNT else \
            schema.index(query.attr)
        est = 0.0
        var = 0.0
        if query.agg is AggFunc.AVG:
            n_q = float(self._populations[first:last + 1].sum())
        for stratum in range(first, last + 1):
            rows = self._stratum_rows(stratum)
            m_i = rows.shape[0]
            n_i = float(self._populations[stratum])
            if m_i == 0 or n_i <= 0:
                continue
            keys = rows[:, self._attr_idx]
            mask = (keys >= lo) & (keys <= hi)
            if query.agg is AggFunc.COUNT:
                contrib = estimators.count_partial(n_i, m_i,
                                                   int(mask.sum()))
            elif query.agg is AggFunc.SUM:
                contrib = estimators.sum_partial(n_i, m_i,
                                                 rows[mask, attr_idx])
            elif query.agg is AggFunc.AVG:
                contrib = estimators.avg_partial(n_i, n_q, m_i,
                                                 rows[mask, attr_idx])
            else:
                raise ValueError(f"SRS does not support {query.agg}")
            est += contrib.estimate
            var += contrib.variance
        return QueryResult(est, 0.0, var, exact=False,
                           n_partial=last - first + 1)
