"""A compact sum-product network: the learned-synopsis substrate.

DeepDB [20] answers AQP queries from a relational sum-product network
(SPN) learned over the data.  This module implements the same idea at the
scale this reproduction needs (see DESIGN.md, substitution 3):

* **structure learning** - recursively split the training sample: columns
  whose absolute correlation graph is disconnected become a *product*
  node (independence split); otherwise rows are clustered with 2-means
  into a *sum* node; small partitions become products of univariate
  histogram leaves;
* **inference** - rectangle probability and ``E[A * 1(rect)]`` are
  computed bottom-up in closed form, giving COUNT = N * P(rect),
  SUM = N * E[A * 1(rect)], AVG = SUM / COUNT.

The two behaviours the paper's experiments rely on are genuine here:
model resolution is fixed after training (accuracy does not improve as
the table grows - Table 2), and training cost scales with the training-
set size (the re-training cost curves of Figures 5 and 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

Range = Optional[Tuple[float, float]]


# ---------------------------------------------------------------------- #
# nodes
# ---------------------------------------------------------------------- #
class HistogramLeaf:
    """Univariate equal-width histogram with per-bin means."""

    def __init__(self, attr: str, values: np.ndarray, n_bins: int) -> None:
        self.attr = attr
        values = np.asarray(values, dtype=np.float64)
        lo, hi = float(values.min()), float(values.max())
        if hi <= lo:
            hi = lo + 1e-9
        self.edges = np.linspace(lo, hi, n_bins + 1)
        counts, _ = np.histogram(values, bins=self.edges)
        total = max(counts.sum(), 1)
        self.masses = counts / total
        # Per-bin value means (for expectations); empty bins use centers.
        sums, _ = np.histogram(values, bins=self.edges, weights=values)
        centers = (self.edges[:-1] + self.edges[1:]) / 2.0
        with np.errstate(invalid="ignore", divide="ignore"):
            self.means = np.where(counts > 0, sums / np.maximum(counts, 1),
                                  centers)

    def _bin_fractions(self, rng: Range) -> np.ndarray:
        """Fraction of each bin's mass inside the range (uniform-in-bin)."""
        if rng is None:
            return np.ones(self.masses.shape[0])
        lo, hi = rng
        left = self.edges[:-1]
        right = self.edges[1:]
        width = np.maximum(right - left, 1e-300)
        overlap = np.clip(np.minimum(right, hi) - np.maximum(left, lo),
                          0.0, None)
        return overlap / width

    def prob(self, ranges: Dict[str, Range]) -> float:
        frac = self._bin_fractions(ranges.get(self.attr))
        return float((self.masses * frac).sum())

    def expectation(self, agg_attr: str, ranges: Dict[str, Range]) -> float:
        frac = self._bin_fractions(ranges.get(self.attr))
        if self.attr == agg_attr:
            return float((self.masses * frac * self.means).sum())
        return float((self.masses * frac).sum())

    @property
    def attrs(self) -> Tuple[str, ...]:
        return (self.attr,)

    def size(self) -> int:
        return 1


class ProductNode:
    """Independent attribute groups: probabilities multiply."""

    def __init__(self, children: Sequence[object]) -> None:
        self.children = list(children)
        self.attrs = tuple(a for c in self.children for a in c.attrs)

    def prob(self, ranges: Dict[str, Range]) -> float:
        p = 1.0
        for child in self.children:
            p *= child.prob(ranges)
        return p

    def expectation(self, agg_attr: str, ranges: Dict[str, Range]) -> float:
        out = 1.0
        for child in self.children:
            if agg_attr in child.attrs:
                out *= child.expectation(agg_attr, ranges)
            else:
                out *= child.prob(ranges)
        return out

    def size(self) -> int:
        return 1 + sum(c.size() for c in self.children)


class SumNode:
    """Row clusters: a mixture with cluster-fraction weights."""

    def __init__(self, children: Sequence[object],
                 weights: Sequence[float]) -> None:
        self.children = list(children)
        self.weights = list(weights)
        self.attrs = self.children[0].attrs if self.children else ()

    def prob(self, ranges: Dict[str, Range]) -> float:
        return sum(w * c.prob(ranges)
                   for w, c in zip(self.weights, self.children))

    def expectation(self, agg_attr: str, ranges: Dict[str, Range]) -> float:
        return sum(w * c.expectation(agg_attr, ranges)
                   for w, c in zip(self.weights, self.children))

    def size(self) -> int:
        return 1 + sum(c.size() for c in self.children)


# ---------------------------------------------------------------------- #
# structure learning
# ---------------------------------------------------------------------- #
def _two_means(data: np.ndarray, rng: np.random.Generator,
               n_init: int = 10, n_iter: int = 50) -> np.ndarray:
    """Cluster rows into two groups; returns a boolean assignment.

    Mirrors the KMeans configuration real SPN learners (SPFlow, hence
    DeepDB) run at every sum-node decision: multiple random restarts,
    iterated to convergence, keeping the lowest-inertia solution.  This
    is deliberately the *training-cost driver* of the learned baseline.
    """
    std = data.std(axis=0)
    std[std == 0] = 1.0
    z = (data - data.mean(axis=0)) / std
    best_assign = np.zeros(z.shape[0], dtype=bool)
    best_inertia = math.inf
    for _ in range(n_init):
        idx = rng.choice(z.shape[0], size=2, replace=False)
        centers = z[idx].copy()
        assign = np.zeros(z.shape[0], dtype=bool)
        for _ in range(n_iter):
            d0 = ((z - centers[0]) ** 2).sum(axis=1)
            d1 = ((z - centers[1]) ** 2).sum(axis=1)
            new_assign = d1 < d0
            if (new_assign == assign).all():
                break
            assign = new_assign
            for c, mask in ((0, ~assign), (1, assign)):
                if mask.any():
                    centers[c] = z[mask].mean(axis=0)
        inertia = float(np.minimum(d0, d1).sum())
        if inertia < best_inertia:
            best_inertia = inertia
            best_assign = assign
    return best_assign


def _rdc(x: np.ndarray, y: np.ndarray, rng: np.random.Generator,
         k: int = 20, s: float = 1.0 / 6.0) -> float:
    """Randomized dependence coefficient between two columns.

    The dependence test SPFlow uses for product-node decisions:
    copula (rank) transform, random sinusoidal features, then the top
    canonical correlation between the two feature sets.  Captures
    non-linear dependence that plain correlation misses - and carries
    the realistic training cost of the learned baseline.
    """
    n = x.shape[0]

    def features(v: np.ndarray) -> np.ndarray:
        ranks = np.argsort(np.argsort(v)) / max(n - 1, 1)
        aug = np.column_stack([ranks, np.ones(n)])
        w = rng.normal(0.0, s, size=(2, k))
        return np.sin(aug @ w)

    fx, fy = features(x), features(y)
    fx = fx - fx.mean(axis=0)
    fy = fy - fy.mean(axis=0)
    cxx = fx.T @ fx / n + 1e-8 * np.eye(k)
    cyy = fy.T @ fy / n + 1e-8 * np.eye(k)
    cxy = fx.T @ fy / n
    sol = np.linalg.solve(cxx, cxy) @ np.linalg.solve(cyy, cxy.T)
    eigs = np.linalg.eigvals(sol)
    rho2 = float(np.max(np.clip(eigs.real, 0.0, 1.0)))
    return math.sqrt(rho2)


def _independent_components(data: np.ndarray, threshold: float,
                            rng: Optional[np.random.Generator] = None
                            ) -> List[List[int]]:
    """Connected components of the RDC-dependence > threshold graph."""
    d = data.shape[1]
    if d == 1:
        return [[0]]
    rng = rng if rng is not None else np.random.default_rng(0)
    adj = np.zeros((d, d), dtype=bool)
    for i in range(d):
        for j in range(i + 1, d):
            dep = _rdc(data[:, i], data[:, j], rng)
            adj[i, j] = adj[j, i] = dep > threshold
    seen = [False] * d
    components: List[List[int]] = []
    for start in range(d):
        if seen[start]:
            continue
        stack, comp = [start], []
        seen[start] = True
        while stack:
            u = stack.pop()
            comp.append(u)
            for v in range(d):
                if not seen[v] and adj[u, v]:
                    seen[v] = True
                    stack.append(v)
        components.append(sorted(comp))
    return components


def _leaf_product(data: np.ndarray, attrs: Sequence[str],
                  n_bins: int) -> object:
    leaves = [HistogramLeaf(attr, data[:, j], n_bins)
              for j, attr in enumerate(attrs)]
    return leaves[0] if len(leaves) == 1 else ProductNode(leaves)


def learn_spn(data: np.ndarray, attrs: Sequence[str],
              min_rows: int = 256, n_bins: int = 32,
              corr_threshold: float = 0.3, seed: int = 0,
              _rng: Optional[np.random.Generator] = None,
              _depth: int = 0, max_depth: int = 12) -> object:
    """Learn an SPN over the training rows (recursive splitting)."""
    data = np.asarray(data, dtype=np.float64)
    rng = _rng if _rng is not None else np.random.default_rng(seed)
    n, d = data.shape
    if n < min_rows or d == 1 or _depth >= max_depth:
        return _leaf_product(data, attrs, n_bins)
    components = _independent_components(data, corr_threshold, rng)
    if len(components) > 1:
        children = []
        for comp in components:
            sub_attrs = [attrs[j] for j in comp]
            child = learn_spn(data[:, comp], sub_attrs, min_rows, n_bins,
                              corr_threshold, _rng=rng, _depth=_depth + 1,
                              max_depth=max_depth)
            children.append(child)
        return ProductNode(children)
    assign = _two_means(data, rng)
    n1 = int(assign.sum())
    if n1 == 0 or n1 == n:
        return _leaf_product(data, attrs, n_bins)
    children = [
        learn_spn(data[~assign], attrs, min_rows, n_bins, corr_threshold,
                  _rng=rng, _depth=_depth + 1, max_depth=max_depth),
        learn_spn(data[assign], attrs, min_rows, n_bins, corr_threshold,
                  _rng=rng, _depth=_depth + 1, max_depth=max_depth),
    ]
    return SumNode(children, [(n - n1) / n, n1 / n])
