"""Baselines the paper compares against: RS, SRS, DeepDB(SPN)."""

from .rs import ReservoirBaseline
from .srs import StratifiedReservoirBaseline
from .deepdb import DeepDBBaseline
from .spn import HistogramLeaf, ProductNode, SumNode, learn_spn

__all__ = ["ReservoirBaseline", "StratifiedReservoirBaseline",
           "DeepDBBaseline", "HistogramLeaf", "ProductNode", "SumNode",
           "learn_spn"]
