"""Reservoir-sampling baseline (paper Section 6.1.3, "RS").

A plain uniform sample of the whole dataset, maintained by the same
AQUA-style dynamic reservoir as JanusAQP's pool, answering queries with
the standard uniform-sampling estimators.  Its query latency grows with
the sample size because every query scans the whole sample - the effect
visible in Table 2's latency columns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.estimators import uniform_estimate
from ..core.queries import AggFunc, Query, QueryResult
from ..core.table import Table
from ..sampling.reservoir import DynamicReservoir


class ReservoirBaseline:
    """Uniform sampling AQP over a dynamic table."""

    def __init__(self, table: Table, sample_rate: float = 0.01,
                 seed: int = 0, min_pool: int = 128) -> None:
        self.table = table
        self.sample_rate = sample_rate
        target = max(min_pool, int(2 * sample_rate * max(len(table), 1)))
        self.reservoir = DynamicReservoir(table, target, seed=seed)
        self._rows: Dict[int, np.ndarray] = {}
        self.reservoir.subscribe(self)
        self.reservoir.initialize()

    # observer protocol ------------------------------------------------- #
    def on_add(self, tid: int) -> None:
        self._rows[tid] = self.table.row(tid).copy()

    def on_remove(self, tid: int) -> None:
        self._rows.pop(tid, None)

    def on_reset(self, tids: List[int]) -> None:
        self._rows = {t: self.table.row(t).copy() for t in tids}

    # updates ------------------------------------------------------------ #
    def insert(self, values: Sequence[float]) -> int:
        tid = self.table.insert(values)
        self.reservoir.on_insert(tid)
        self._maybe_grow_pool()
        return tid

    def _maybe_grow_pool(self) -> None:
        """Keep the pool at ~2 * rate * |D| as the data grows (resampling
        on growth keeps it uniform; see DynamicReservoir.set_target)."""
        want = int(2 * self.sample_rate * len(self.table))
        if want > 1.25 * self.reservoir.target_size:
            self.reservoir.set_target(want, resample=True)

    def delete(self, tid: int) -> None:
        self.table.delete(tid)
        self.reservoir.on_delete(tid)

    # queries ------------------------------------------------------------ #
    def query(self, query: Query) -> QueryResult:
        if not self._rows:
            raise RuntimeError("empty sample")
        rows = np.stack(list(self._rows.values()))
        schema = self.table.schema
        mask = np.ones(rows.shape[0], dtype=bool)
        for dim, attr in enumerate(query.predicate_attrs):
            col = rows[:, schema.index(attr)]
            mask &= (col >= query.rect.lo[dim]) & \
                    (col <= query.rect.hi[dim])
        if query.agg is AggFunc.COUNT:
            matched = np.ones(int(mask.sum()))
        else:
            matched = rows[mask, schema.index(query.attr)]
        contrib = uniform_estimate(query.agg.value, float(len(self.table)),
                                   rows.shape[0], matched)
        return QueryResult(contrib.estimate, 0.0, contrib.variance,
                           exact=False, n_partial=1)
