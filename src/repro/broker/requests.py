"""Request (de)serialization for the broker topics (Section 3.2).

JanusAQP adopts the PSoup architecture: both data and queries are
streams.  Three topics carry three request kinds::

    insert(key, tuple)   - a new tuple, tagged with a client-side key
    delete(key)          - remove the tuple previously inserted as `key`
    execute(query)       - an aggregate query over the current state

Tuple ids are assigned server-side at insert time, so delete requests
reference the *client key* of the insert; the stream driver keeps the
key-to-tid mapping.  All payloads are flat strings - the same
serialized-record discipline the samplers rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core.queries import AggFunc, Query, Rectangle

_FIELD_SEP = "|"
_NUM_SEP = ","


@dataclass(frozen=True)
class InsertRequest:
    key: int
    values: Tuple[float, ...]


@dataclass(frozen=True)
class DeleteRequest:
    key: int


@dataclass(frozen=True)
class QueryRequest:
    query_id: int
    query: Query


Request = Union[InsertRequest, DeleteRequest, QueryRequest]


def encode_insert(key: int, values: Sequence[float]) -> str:
    nums = _NUM_SEP.join(repr(float(v)) for v in values)
    return f"I{_FIELD_SEP}{key}{_FIELD_SEP}{nums}"


def encode_inserts(start_key: int,
                   rows: Sequence[Sequence[float]]
                   ) -> Tuple[List[str], List[int]]:
    """Encode a row block as insert records with consecutive client keys.

    Returns ``(records, keys)`` where ``keys[i]`` is ``start_key + i``;
    the batch producer path uses this with ``Topic.produce_many``.
    """
    keys = list(range(start_key, start_key + len(rows)))
    records = [encode_insert(key, row) for key, row in zip(keys, rows)]
    return records, keys


def encode_delete(key: int) -> str:
    return f"D{_FIELD_SEP}{key}"


def encode_query(query_id: int, query: Query) -> str:
    parts = [
        "Q", str(query_id), query.agg.value, query.attr,
        _NUM_SEP.join(query.predicate_attrs),
        _NUM_SEP.join(repr(float(x)) for x in query.rect.lo),
        _NUM_SEP.join(repr(float(x)) for x in query.rect.hi),
    ]
    return _FIELD_SEP.join(parts)


def decode(record: str) -> Request:
    """Parse one serialized request."""
    parts = record.split(_FIELD_SEP)
    kind = parts[0]
    if kind == "I":
        key = int(parts[1])
        values = tuple(float(tok) for tok in parts[2].split(_NUM_SEP))
        return InsertRequest(key, values)
    if kind == "D":
        return DeleteRequest(int(parts[1]))
    if kind == "Q":
        query_id = int(parts[1])
        agg = AggFunc(parts[2])
        attr = parts[3]
        pred_attrs = tuple(parts[4].split(_NUM_SEP))
        lo = tuple(float(tok) for tok in parts[5].split(_NUM_SEP))
        hi = tuple(float(tok) for tok in parts[6].split(_NUM_SEP))
        query = Query(agg, attr, pred_attrs, Rectangle(lo, hi))
        return QueryRequest(query_id, query)
    raise ValueError(f"unknown request kind {kind!r}")
