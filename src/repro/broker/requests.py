"""Request (de)serialization for the broker topics (Section 3.2).

JanusAQP adopts the PSoup architecture: both data and queries are
streams.  Three topics carry three request kinds::

    insert(key, tuple)   - a new tuple, tagged with a client-side key
    delete(key)          - remove the tuple previously inserted as `key`
    execute(query)       - an aggregate query over the current state

Tuple ids are assigned server-side at insert time, so delete requests
reference the *client key* of the insert; the stream driver keeps the
key-to-tid mapping.  All payloads are flat strings - the same
serialized-record discipline the samplers rely on.

Answers flow back through a fourth lane: the driver publishes each
answered query as a :class:`QueryResponse` record
(:func:`encode_result` / :func:`decode_result`) on its results topic,
so reads and writes ride the same event log end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core.queries import AggFunc, Query, QueryResult, Rectangle

_FIELD_SEP = "|"
_NUM_SEP = ","


@dataclass(frozen=True)
class InsertRequest:
    key: int
    values: Tuple[float, ...]


@dataclass(frozen=True)
class DeleteRequest:
    key: int


@dataclass(frozen=True)
class QueryRequest:
    query_id: int
    query: Query


@dataclass(frozen=True)
class QueryResponse:
    """One answered query on the results topic.

    Carries the full :class:`~repro.core.queries.QueryResult` envelope -
    estimate, both variance components of Section 4.4.1, the exactness
    flag and the frontier sizes - so consumers can reconstruct
    confidence intervals without talking to the synopsis.
    """

    query_id: int
    estimate: float
    variance_catchup: float
    variance_sample: float
    exact: bool
    n_covered: int
    n_partial: int

    @property
    def variance(self) -> float:
        """Total estimator variance ``nu_c + nu_s``."""
        return self.variance_catchup + self.variance_sample


Request = Union[InsertRequest, DeleteRequest, QueryRequest]


def encode_insert(key: int, values: Sequence[float]) -> str:
    """Serialize one insert request under a client-side key."""
    nums = _NUM_SEP.join(repr(float(v)) for v in values)
    return f"I{_FIELD_SEP}{key}{_FIELD_SEP}{nums}"


def encode_inserts(start_key: int,
                   rows: Sequence[Sequence[float]]
                   ) -> Tuple[List[str], List[int]]:
    """Encode a row block as insert records with consecutive client keys.

    Returns ``(records, keys)`` where ``keys[i]`` is ``start_key + i``;
    the batch producer path uses this with ``Topic.produce_many``.
    """
    keys = list(range(start_key, start_key + len(rows)))
    records = [encode_insert(key, row) for key, row in zip(keys, rows)]
    return records, keys


def encode_delete(key: int) -> str:
    """Serialize a delete of the tuple inserted under ``key``."""
    return f"D{_FIELD_SEP}{key}"


def encode_query(query_id: int, query: Query) -> str:
    """Serialize one execute request (aggregate + rectangle).

    The trailing field carries the parameterized aggregates' argument
    (:attr:`~repro.core.queries.Query.param`); it is omitted when
    ``None`` so parameterless records keep their historical 7-field
    shape and old decoders keep working.
    """
    parts = [
        "Q", str(query_id), query.agg.value, query.attr,
        _NUM_SEP.join(query.predicate_attrs),
        _NUM_SEP.join(repr(float(x)) for x in query.rect.lo),
        _NUM_SEP.join(repr(float(x)) for x in query.rect.hi),
    ]
    if query.param is not None:
        parts.append(repr(float(query.param)))
    return _FIELD_SEP.join(parts)


def encode_queries(start_id: int, queries: Sequence[Query]
                   ) -> Tuple[List[str], List[int]]:
    """Encode a query batch with consecutive query ids.

    Returns ``(records, query_ids)``; the batch producer path uses this
    with ``Topic.produce_many``, mirroring :func:`encode_inserts`.
    """
    ids = list(range(start_id, start_id + len(queries)))
    records = [encode_query(qid, query)
               for qid, query in zip(ids, queries)]
    return records, ids


def encode_result(query_id: int, result) -> str:
    """Serialize a :class:`~repro.core.queries.QueryResult` answer."""
    parts = [
        "R", str(query_id), repr(float(result.estimate)),
        repr(float(result.variance_catchup)),
        repr(float(result.variance_sample)),
        "1" if result.exact else "0",
        str(int(result.n_covered)), str(int(result.n_partial)),
    ]
    return _FIELD_SEP.join(parts)


def decode_result(record: str) -> QueryResponse:
    """Parse one results-topic record."""
    parts = record.split(_FIELD_SEP)
    if parts[0] != "R":
        raise ValueError(f"not a query response: {record!r}")
    return QueryResponse(
        query_id=int(parts[1]), estimate=float(parts[2]),
        variance_catchup=float(parts[3]), variance_sample=float(parts[4]),
        exact=parts[5] == "1", n_covered=int(parts[6]),
        n_partial=int(parts[7]))


def query_to_dict(query: Query) -> dict:
    """JSON-safe mapping for one query (HTTP service wire format).

    The inverse of :func:`query_from_dict`; floats round-trip exactly
    because JSON serialization uses Python's shortest-repr floats.
    """
    return {
        "agg": query.agg.value,
        "attr": query.attr,
        "predicate_attrs": list(query.predicate_attrs),
        "lo": [float(x) for x in query.rect.lo],
        "hi": [float(x) for x in query.rect.hi],
        "param": None if query.param is None else float(query.param),
    }


def query_from_dict(payload: dict) -> Query:
    """Parse one query mapping; raises ``ValueError`` on a bad shape."""
    try:
        agg = AggFunc(str(payload["agg"]).upper())
        attr = str(payload["attr"])
        pred_attrs = tuple(str(a) for a in payload["predicate_attrs"])
        lo = tuple(float(x) for x in payload["lo"])
        hi = tuple(float(x) for x in payload["hi"])
        raw_param = payload.get("param")
        param = None if raw_param is None else float(raw_param)
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed query payload: {exc}") from exc
    return Query(agg, attr, pred_attrs, Rectangle(lo, hi), param)


def result_to_dict(result) -> dict:
    """JSON-safe mapping for a :class:`~repro.core.queries.QueryResult`.

    Carries the same envelope as :func:`encode_result` (estimate, both
    Section 4.4.1 variance components, exactness, frontier sizes) so a
    service client can reconstruct confidence intervals; the internal
    ``details`` dict (merge bookkeeping, numpy payloads) stays
    server-side.
    """
    return {
        "estimate": float(result.estimate),
        "variance_catchup": float(result.variance_catchup),
        "variance_sample": float(result.variance_sample),
        "exact": bool(result.exact),
        "n_covered": int(result.n_covered),
        "n_partial": int(result.n_partial),
    }


def result_from_dict(payload: dict) -> QueryResult:
    """Rebuild the :func:`result_to_dict` envelope (the client side).

    Kept beside its inverse so the field list lives in exactly one
    module; raises ``KeyError``/``ValueError``/``TypeError`` on a
    payload that does not carry the full envelope.
    """
    return QueryResult(
        estimate=float(payload["estimate"]),
        variance_catchup=float(payload["variance_catchup"]),
        variance_sample=float(payload["variance_sample"]),
        exact=bool(payload["exact"]),
        n_covered=int(payload["n_covered"]),
        n_partial=int(payload["n_partial"]))


def decode(record: str) -> Request:
    """Parse one serialized request."""
    parts = record.split(_FIELD_SEP)
    kind = parts[0]
    if kind == "I":
        key = int(parts[1])
        values = tuple(float(tok) for tok in parts[2].split(_NUM_SEP))
        return InsertRequest(key, values)
    if kind == "D":
        return DeleteRequest(int(parts[1]))
    if kind == "Q":
        query_id = int(parts[1])
        agg = AggFunc(parts[2])
        attr = parts[3]
        pred_attrs = tuple(parts[4].split(_NUM_SEP))
        lo = tuple(float(tok) for tok in parts[5].split(_NUM_SEP))
        hi = tuple(float(tok) for tok in parts[6].split(_NUM_SEP))
        param = float(parts[7]) if len(parts) > 7 else None
        query = Query(agg, attr, pred_attrs, Rectangle(lo, hi), param)
        return QueryRequest(query_id, query)
    raise ValueError(f"unknown request kind {kind!r}")
