"""Length-prefixed binary frames for the process-per-shard fleet.

The serving fleet (:mod:`repro.service.fleet`) escapes the GIL by
moving each shard into its own worker process; what crosses the
process boundary is framed here.  The design goals, in order:

1. **zero-copy row transport** - row blocks and tid arrays travel as
   raw little-endian numpy buffers (``ndarray -> sendall`` on the way
   out, ``recv_into -> frombuffer`` on the way in), never JSON.  An
   insert of n rows costs ``29 + 8*n*n_cols`` bytes on the wire and no
   per-row Python object ever exists;
2. **codec reuse** - queries ride the existing line format of
   :mod:`repro.broker.requests` (``encode_query``/``decode``), one
   record per line, so the wire shares the broker's tested codec
   instead of inventing a second query serialization;
3. **bit-exact answers** - :data:`RESULT_DTYPE` carries every
   :class:`~repro.core.queries.QueryResult` field plus the merge
   inputs (AVG's ``n_q`` normalizer, the VARIANCE/STDDEV moment
   triple) as IEEE-754 doubles, which round-trip exactly; the
   coordinator's :func:`~repro.core.merge.merge_results` therefore
   sees byte-identical inputs to the in-process fan-out's.

Frame layout (little-endian)::

    header  = opcode:u8 | meta:u32 | trace_id:u64 | span:u64
              | payload_len:u64                           (29 bytes)
    payload = payload_len raw bytes (opcode-specific)

``meta`` is an opcode-specific small integer (column count for
INSERT, result count for a QUERY reply, flag bits elsewhere).
``trace_id`` is 0 for untraced traffic; on a traced *request* it
carries the request's trace id and ``span`` the coordinator-side
parent span id, so the worker can parent its own spans under the
coordinator's ``shard_execute``.  On a traced OP_QUERY *reply*,
``span`` is reinterpreted as the byte length of a JSON span sidecar
appended after the opcode-specific body (see
:mod:`repro.obs.trace`); it is 0 on every untraced frame, which
keeps the untraced wire byte-compatible apart from the wider header.
Every *reply* payload starts with the worker's ``data_epoch`` as an
``i64`` (:func:`pack_reply` / :func:`split_reply`) so the
coordinator's cache epoch mirror stays current without extra round
trips.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..core.merge import MOMENTS_KEY, N_Q_KEY
from ..core.queries import QueryResult
from ..sketch.registry import SKETCH_KEY

__all__ = [
    "HEADER", "MAX_PAYLOAD", "OP_DELETE", "OP_ERR", "OP_INSERT",
    "OP_OK", "OP_PING", "OP_QUERY", "OP_REOPT", "OP_SHUTDOWN",
    "OP_STATS", "OP_SUMMARY", "RESULT_DTYPE", "SketchFrame",
    "attach_sketch_frames", "decode_result_block",
    "decode_sketch_block", "encode_result_block",
    "encode_sketch_block", "extract_sketch_frames", "pack_reply",
    "recv_frame", "send_frame", "split_reply",
]

#: ``opcode:u8 | meta:u32 | trace_id:u64 | span:u64 | payload_len:u64``,
#: packed little-endian.
HEADER = struct.Struct("<BIQQQ")

#: Hard per-frame ceiling (1 GiB): a corrupt length prefix must fail
#: fast, not drive a multi-exabyte allocation.
MAX_PAYLOAD = 1 << 30

# Coordinator -> worker requests.
OP_PING = 1       #: liveness probe; empty payload, OK reply
OP_INSERT = 2     #: raw f64 row block; meta = n_cols
OP_DELETE = 3     #: raw i64 local-tid block
OP_QUERY = 4      #: newline-joined broker query records (UTF-8)
OP_REOPT = 5      #: re-optimize the shard; empty payload
OP_SUMMARY = 6    #: compute a fresh routing summary; empty payload
OP_STATS = 7      #: shard counters as JSON; empty payload
OP_SHUTDOWN = 8   #: drain and exit; empty payload, OK reply then EOF
# Worker -> coordinator replies.
OP_OK = 16        #: success; payload = i64 epoch + opcode-specific body
OP_ERR = 17       #: failure; payload = "ExcType\nmessage" (UTF-8)

#: One wire record per :class:`~repro.core.queries.QueryResult`.  The
#: three ``has_*``/flag bytes distinguish "no details entry" from a
#: zero-valued one, so decoded ``details`` dicts match the originals
#: key for key and the merge rules (which probe ``details.get``)
#: behave identically on both sides of the wire.
RESULT_DTYPE = np.dtype([
    ("estimate", "<f8"),
    ("variance_catchup", "<f8"),
    ("variance_sample", "<f8"),
    ("exact", "<i1"),
    ("n_covered", "<i8"),
    ("n_partial", "<i8"),
    ("has_n_q", "<i1"),
    ("n_q", "<f8"),
    ("has_moments", "<i1"),
    ("m_count", "<f8"),
    ("m_sum", "<f8"),
    ("m_sumsq", "<f8"),
    ("ci_unavailable", "<i1"),
])


# ---------------------------------------------------------------------- #
# socket framing
# ---------------------------------------------------------------------- #
def send_frame(sock: socket.socket, opcode: int, meta: int = 0,
               bufs: Iterable = (), trace_id: int = 0,
               span: int = 0) -> int:
    """Write one frame; returns the total bytes put on the wire.

    ``bufs`` is any iterable of buffer-protocol chunks (bytes,
    memoryviews, numpy arrays); they are concatenated as the payload
    without an intermediate copy of the large blocks - a C-contiguous
    ndarray goes to ``sendall`` as its own memory.  ``trace_id`` and
    ``span`` default to 0 (untraced); see the module docstring for
    their traced semantics.
    """
    chunks = [memoryview(np.ascontiguousarray(b)).cast("B")
              if isinstance(b, np.ndarray) else memoryview(b)
              for b in bufs]
    total = sum(c.nbytes for c in chunks)
    sock.sendall(HEADER.pack(opcode, meta, trace_id, span, total))
    for c in chunks:
        sock.sendall(c)
    return HEADER.size + total


def recv_exact(sock: socket.socket, n: int) -> memoryview:
    """Read exactly ``n`` bytes or raise ``EOFError`` on a closed peer."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        k = sock.recv_into(view[got:], n - got)
        if k == 0:
            raise EOFError("peer closed mid-frame")
        got += k
    return memoryview(buf)


def recv_frame(sock: socket.socket
               ) -> Tuple[int, int, memoryview, int, int]:
    """Read one frame; returns ``(opcode, meta, payload, trace_id,
    span)``.  The trailing pair is ``(0, 0)`` on untraced traffic."""
    opcode, meta, trace_id, span, length = HEADER.unpack(
        recv_exact(sock, HEADER.size))
    if length > MAX_PAYLOAD:
        raise ValueError(f"frame of {length} bytes exceeds the "
                         f"{MAX_PAYLOAD}-byte ceiling")
    payload = recv_exact(sock, length) if length else memoryview(b"")
    return opcode, meta, payload, trace_id, span


# ---------------------------------------------------------------------- #
# reply epoch prefix
# ---------------------------------------------------------------------- #
def pack_reply(epoch: int, bufs: Iterable = ()) -> List[object]:
    """Prefix a reply body with the worker's ``data_epoch`` (i64)."""
    return [np.int64(epoch).tobytes(), *bufs]


def split_reply(payload: memoryview) -> Tuple[int, memoryview]:
    """Split a reply payload into ``(epoch, body)``."""
    epoch = int(np.frombuffer(payload[:8], dtype=np.int64)[0])
    return epoch, payload[8:]


# ---------------------------------------------------------------------- #
# result block codec
# ---------------------------------------------------------------------- #
def encode_result_block(results: Sequence[QueryResult]) -> np.ndarray:
    """Pack query answers into a :data:`RESULT_DTYPE` record block."""
    block = np.zeros(len(results), dtype=RESULT_DTYPE)
    for i, result in enumerate(results):
        rec = block[i]
        rec["estimate"] = result.estimate
        rec["variance_catchup"] = result.variance_catchup
        rec["variance_sample"] = result.variance_sample
        rec["exact"] = 1 if result.exact else 0
        rec["n_covered"] = result.n_covered
        rec["n_partial"] = result.n_partial
        details = result.details
        if N_Q_KEY in details:
            rec["has_n_q"] = 1
            rec["n_q"] = float(details[N_Q_KEY])
        if MOMENTS_KEY in details:
            count, total, totalsq = details[MOMENTS_KEY]
            rec["has_moments"] = 1
            rec["m_count"] = float(count)
            rec["m_sum"] = float(total)
            rec["m_sumsq"] = float(totalsq)
        if details.get("ci") == "unavailable":
            rec["ci_unavailable"] = 1
    return block


def decode_result_block(payload) -> List[QueryResult]:
    """Unpack a :data:`RESULT_DTYPE` block back into answer objects.

    ``payload`` must hold exactly the fixed-size block: an OP_QUERY
    reply carrying a sketch sidecar is sliced by the caller at
    ``n * RESULT_DTYPE.itemsize`` first (see
    :func:`decode_sketch_block`).
    """
    block = np.frombuffer(payload, dtype=RESULT_DTYPE)
    out: List[QueryResult] = []
    for rec in block:
        result = QueryResult(
            estimate=float(rec["estimate"]),
            variance_catchup=float(rec["variance_catchup"]),
            variance_sample=float(rec["variance_sample"]),
            exact=bool(rec["exact"]),
            n_covered=int(rec["n_covered"]),
            n_partial=int(rec["n_partial"]))
        if rec["ci_unavailable"]:
            result.details["ci"] = "unavailable"
        if rec["has_n_q"]:
            result.details[N_Q_KEY] = float(rec["n_q"])
        if rec["has_moments"]:
            result.details[MOMENTS_KEY] = (float(rec["m_count"]),
                                           float(rec["m_sum"]),
                                           float(rec["m_sumsq"]))
        out.append(result)
    return out


# ---------------------------------------------------------------------- #
# sketch sidecar codec
# ---------------------------------------------------------------------- #
#: ``index:u32 | blob_len:u32`` per sidecar entry, little-endian.
_SKETCH_FRAME_HEADER = struct.Struct("<II")


@dataclass(frozen=True)
class SketchFrame:
    """One variable-length sketch blob riding beside a result block.

    The fixed :data:`RESULT_DTYPE` records cannot carry the canonical
    sketch blobs (they are variable length), so an OP_QUERY reply
    appends a sidecar after the fixed block: one frame per result that
    answered a sketch aggregate.  ``index`` is the result's position in
    the block; ``blob`` is the canonical bytes the coordinator feeds to
    :func:`~repro.core.merge.merge_sketch` - byte-identical to what the
    in-process engine would have put in ``details["sketch"]``.
    """

    index: int
    blob: bytes


def encode_sketch_block(frames: Sequence[SketchFrame]) -> bytes:
    """Pack sidecar frames: ``index:u32 | blob_len:u32 | blob`` each."""
    parts: List[bytes] = []
    for frame in frames:
        parts.append(_SKETCH_FRAME_HEADER.pack(frame.index,
                                               len(frame.blob)))
        parts.append(frame.blob)
    return b"".join(parts)


def decode_sketch_block(payload) -> List[SketchFrame]:
    """Unpack a sketch sidecar back into frames."""
    buf = bytes(payload)
    frames: List[SketchFrame] = []
    offset = 0
    while offset < len(buf):
        index, blob_len = _SKETCH_FRAME_HEADER.unpack_from(buf, offset)
        offset += _SKETCH_FRAME_HEADER.size
        if offset + blob_len > len(buf):
            raise ValueError("truncated sketch sidecar frame")
        frames.append(SketchFrame(index=int(index),
                                  blob=buf[offset:offset + blob_len]))
        offset += blob_len
    return frames


def extract_sketch_frames(results: Sequence[QueryResult]
                          ) -> List[SketchFrame]:
    """Sidecar frames for every result carrying a sketch blob."""
    return [SketchFrame(i, result.details[SKETCH_KEY])
            for i, result in enumerate(results)
            if SKETCH_KEY in result.details]


def attach_sketch_frames(results: Sequence[QueryResult],
                         frames: Sequence[SketchFrame]) -> None:
    """Re-attach decoded sidecar blobs onto their results (in place)."""
    for frame in frames:
        results[frame.index].details[SKETCH_KEY] = frame.blob
