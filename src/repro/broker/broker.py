"""In-process message broker with Kafka-like semantics.

The paper implements JanusAQP on Apache Kafka (Section 3.2): three topics
(``insert``, ``delete``, ``execute``) carry tuple/query requests, and
Appendix A builds random samplers on top of the narrow consumer API -
``poll`` from an *offset* returning a batch of *serialized* records.

This module reproduces exactly that narrow API in-process:

* :class:`Topic` - an append-only log of serialized string records,
  addressed by offset;
* :class:`Broker` - a named collection of topics;
* :class:`Consumer` - a cursor over one topic with ``seek``/``poll``.

Records are stored **serialized** (CSV strings) on purpose: the catch-up
"loading vs processing" experiment (Figure 7, right) and the sampler
trade-off experiment (Table 4) are only meaningful when each poll pays a
real parsing cost.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class Topic:
    """Append-only offset-addressed log of serialized records."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._records: List[str] = []  # guarded-by: _lock
        self._lock = threading.Lock()

    def produce(self, record: str) -> int:
        """Append one record; returns its offset."""
        with self._lock:
            self._records.append(record)
            return len(self._records) - 1

    def produce_many(self, records: Iterable[str]) -> int:
        """Append records; returns the next end offset."""
        with self._lock:
            self._records.extend(records)
            return len(self._records)

    def poll(self, offset: int, max_records: int) -> List[str]:
        """Up to ``max_records`` records starting at ``offset``.

        Mirrors the Kafka consumer contract the paper's samplers rely on:
        batches are contiguous runs from a caller-supplied offset.
        """
        if offset < 0:
            raise ValueError("offset must be >= 0")
        with self._lock:
            return self._records[offset:offset + max_records]

    @property
    def end_offset(self) -> int:
        """Offset one past the last record (the next produce offset)."""
        with self._lock:
            return len(self._records)

    def __len__(self) -> int:
        return self.end_offset


class Broker:
    """A set of named topics (the paper uses insert/delete/execute)."""

    INSERT = "insert"
    DELETE = "delete"
    EXECUTE = "execute"

    def __init__(self) -> None:
        self._topics: Dict[str, Topic] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def topic(self, name: str) -> Topic:
        """The named topic, created on first access."""
        with self._lock:
            if name not in self._topics:
                self._topics[name] = Topic(name)
            return self._topics[name]

    def topics(self) -> List[str]:
        """Names of every topic created so far."""
        with self._lock:
            return list(self._topics)


class Consumer:
    """A polling cursor over one topic."""

    def __init__(self, topic: Topic, offset: int = 0) -> None:
        self.topic = topic
        self.offset = offset

    def seek(self, offset: int) -> None:
        """Move the cursor to an absolute offset."""
        self.offset = offset

    def poll(self, max_records: int) -> List[str]:
        """Consume up to ``max_records`` records, advancing the cursor."""
        batch = self.topic.poll(self.offset, max_records)
        self.offset += len(batch)
        return batch

    @property
    def lag(self) -> int:
        """Records produced but not yet consumed by this cursor."""
        return max(0, self.topic.end_offset - self.offset)


# ---------------------------------------------------------------------- #
# record (de)serialization - deliberately string-based, see module doc
# ---------------------------------------------------------------------- #
def encode_row(values: Sequence[float]) -> str:
    """Serialize one row as a lossless CSV record (``repr`` floats)."""
    return ",".join(repr(float(v)) for v in values)

def decode_row(record: str) -> List[float]:
    """Parse one CSV record back into its float values."""
    return [float(tok) for tok in record.split(",")]

def encode_rows(rows: np.ndarray) -> List[str]:
    """Serialize an ``(n, n_attrs)`` block, one record per row."""
    return [encode_row(row) for row in np.asarray(rows, dtype=np.float64)]

def decode_rows(records: Sequence[str],
                n_attrs: Optional[int] = None) -> np.ndarray:
    """Decode a record batch into one ``(n, n_attrs)`` array.

    Pass ``n_attrs`` so an empty batch keeps the schema's width: a
    ``(0, 0)``-shaped array would fail the arity checks of the routing
    layers, while ``(0, n_attrs)`` flows through them as a no-op.
    """
    if not records:
        return np.empty((0, n_attrs if n_attrs is not None else 0))
    return np.array([decode_row(r) for r in records], dtype=np.float64)
