"""Random samplers over a broker topic (paper, Appendix A).

Message brokers expose no random access: a consumer polls a contiguous
batch from an offset.  Appendix A proposes two unbiased samplers and
studies their latency trade-off (reproduced by
``benchmarks/bench_table4_samplers.py``):

* :class:`SingletonSampler` - each poll requests **one** record at a
  uniformly random offset.  Minimal transfer, one API round-trip per
  sample; best for small sample rates (the paper uses it for <=1%
  initialization sampling).
* :class:`SequentialSampler` - scans the whole topic in batches of
  ``poll_size`` and keeps a uniform subsample of each batch.  The entire
  log is transferred, but per-record API overhead is amortized; best for
  large catch-up rates (>=10%).

Both samplers return *parsed* rows and separately account the time spent
loading (polling + parsing, the "essential cost" of Figure 7's right plot)
so the catch-up benchmark can split loading from processing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .broker import Topic, decode_row


@dataclass
class SampleStats:
    """Accounting for one sampling run."""

    n_polls: int = 0
    n_records_transferred: int = 0
    n_samples: int = 0
    loading_seconds: float = 0.0


class SingletonSampler:
    """One record per poll at a random offset: unbiased, low transfer."""

    def __init__(self, topic: Topic, seed: int = 0) -> None:
        self.topic = topic
        self._rng = np.random.default_rng(seed)
        self.stats = SampleStats()

    def sample(self, k: int) -> List[List[float]]:
        """Draw ``k`` uniform records (with replacement across polls)."""
        out: List[List[float]] = []
        end = self.topic.end_offset
        if end == 0:
            return out
        t0 = time.perf_counter()
        for _ in range(k):
            offset = int(self._rng.integers(end))
            batch = self.topic.poll(offset, 1)
            self.stats.n_polls += 1
            self.stats.n_records_transferred += len(batch)
            if batch:
                out.append(decode_row(batch[0]))
        self.stats.loading_seconds += time.perf_counter() - t0
        self.stats.n_samples += len(out)
        return out


class SequentialSampler:
    """Scan the topic in batches, keep a per-batch uniform subsample."""

    def __init__(self, topic: Topic, poll_size: int,
                 seed: int = 0) -> None:
        if poll_size < 1:
            raise ValueError("poll_size must be >= 1")
        self.topic = topic
        self.poll_size = poll_size
        self._rng = np.random.default_rng(seed)
        self.stats = SampleStats()

    def sample(self, k: int) -> List[List[float]]:
        """Draw ``k`` uniform records by scanning the whole topic."""
        end = self.topic.end_offset
        if end == 0 or k <= 0:
            return []
        rate = min(1.0, k / end)
        out: List[List[float]] = []
        t0 = time.perf_counter()
        offset = 0
        while offset < end:
            batch = self.topic.poll(offset, self.poll_size)
            if not batch:
                break
            self.stats.n_polls += 1
            self.stats.n_records_transferred += len(batch)
            keep = self._rng.random(len(batch)) < rate
            for record, kept in zip(batch, keep):
                if kept:
                    out.append(decode_row(record))
            offset += len(batch)
        self.stats.loading_seconds += time.perf_counter() - t0
        self.stats.n_samples += len(out)
        return out


def choose_sampler(topic: Topic, sample_rate: float, seed: int = 0,
                   poll_size: int = 10_000):
    """The paper's policy: singleton for rates <~10%, sequential above.

    "Because the sample rate we use during initialization is no larger
    than 1%, we always use a singleton sampler during initialization...
    for the catch-up phase, if our catch-up rate is larger than 10% ...
    we will prefer to use a sequential sampler" (Appendix A).
    """
    if sample_rate > 0.10:
        return SequentialSampler(topic, poll_size, seed=seed)
    return SingletonSampler(topic, seed=seed)
