"""Kafka-like in-process broker and the Appendix-A samplers."""

from .broker import Broker, Consumer, Topic, decode_row, decode_rows, \
    encode_row, encode_rows
from .requests import (DeleteRequest, InsertRequest, QueryRequest,
                       QueryResponse, decode, decode_result,
                       encode_delete, encode_insert, encode_queries,
                       encode_query, encode_result)
from .samplers import SequentialSampler, SingletonSampler, choose_sampler

__all__ = ["Broker", "Consumer", "Topic", "decode_row", "decode_rows",
           "encode_row", "encode_rows", "SequentialSampler",
           "SingletonSampler", "choose_sampler", "DeleteRequest",
           "InsertRequest", "QueryRequest", "QueryResponse", "decode",
           "decode_result", "encode_delete", "encode_insert",
           "encode_queries", "encode_query", "encode_result"]
